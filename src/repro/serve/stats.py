"""Serving observability: hit/shed counters and a latency histogram.

The serving layer's health is read off three rates — result-cache hit
rate, load-shed rate, and the latency distribution — exactly the triple a
production dashboard for a read-heavy store shows.  :class:`ServeStats` is
the one object all serving components bill into; it is thread-safe because
the :class:`~repro.serve.batcher.RequestBatcher` worker pool shares it.

Latencies land in geometric buckets (factor 2 from 1 µs), so percentiles
are bucket-resolution estimates: good enough to see a cache turning 10 ms
walks into 10 µs lookups, with O(1) memory forever.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict

from repro.errors import ConfigurationError

__all__ = ["ServeStats"]

#: Bucket upper bounds in seconds: 1 µs · 2^i, i = 0 … 39 (~18 minutes).
_BUCKET_BOUNDS = [1e-6 * (2.0**i) for i in range(40)]

#: Kernel-batch-size bucket upper bounds: 1, 2, 4, … 4096 queries.
_BATCH_BUCKET_BOUNDS = [2**i for i in range(13)]

#: Steps(visits)-per-query bucket upper bounds: 1, 2, 4, … ~8M steps.
_STEP_BUCKET_BOUNDS = [2**i for i in range(24)]


class ServeStats:
    """Counters + latency histogram for the query-serving layer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.hits = 0
        self.misses = 0
        self.shed = 0
        self.coalesced = 0
        self.invalidated_results = 0
        self.flushes = 0
        self._latency_buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_max = 0.0
        #: Multi-seed query-kernel invocations and the queries they carried.
        self.kernel_batches = 0
        self.kernel_queries = 0
        self._batch_size_buckets = [0] * (len(_BATCH_BUCKET_BOUNDS) + 1)
        self._step_buckets = [0] * (len(_STEP_BUCKET_BOUNDS) + 1)
        self._steps_total = 0
        #: Bounded-staleness scheduler accounting (PR 6).
        self.deferred_events = 0
        self.stale_depth = 0
        self.max_stale_depth = 0
        self.repairs = 0
        self.repaired_events = 0
        self.budget_repairs = 0
        self.read_repairs = 0
        self._repair_latency_buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._repair_latency_count = 0
        self._repair_latency_total = 0.0
        self._repair_latency_max = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_query(self, *, hit: bool, latency: float) -> None:
        """Bill one answered query (a shed request is *not* a query)."""
        with self._lock:
            self.queries += 1
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            self._record_latency(latency)

    def reset(self) -> None:
        """Zero every counter and the latency histogram.

        A :class:`~repro.serve.batcher.RequestBatcher` restart reuses the
        engine's long-lived stats object; without a reset the second
        session's rates are polluted by the first session's counts (the
        regression ``tests/test_serve.py`` pins down).  Atomic with
        respect to concurrent recording.
        """
        with self._lock:
            self.queries = 0
            self.hits = 0
            self.misses = 0
            self.shed = 0
            self.coalesced = 0
            self.invalidated_results = 0
            self.flushes = 0
            self._latency_buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
            self._latency_count = 0
            self._latency_total = 0.0
            self._latency_max = 0.0
            self.kernel_batches = 0
            self.kernel_queries = 0
            self._batch_size_buckets = [0] * (len(_BATCH_BUCKET_BOUNDS) + 1)
            self._step_buckets = [0] * (len(_STEP_BUCKET_BOUNDS) + 1)
            self._steps_total = 0
            self.deferred_events = 0
            self.stale_depth = 0
            self.max_stale_depth = 0
            self.repairs = 0
            self.repaired_events = 0
            self.budget_repairs = 0
            self.read_repairs = 0
            self._repair_latency_buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
            self._repair_latency_count = 0
            self._repair_latency_total = 0.0
            self._repair_latency_max = 0.0

    def record_kernel_batch(self, batch_size: int, steps_per_query) -> None:
        """Bill one multi-seed kernel invocation.

        ``batch_size`` is how many cache-miss queries the invocation
        carried (lands in the geometric batch-size histogram);
        ``steps_per_query`` is each query's realized walk length in
        visits (lands in the steps-per-query histogram).
        """
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        with self._lock:
            self.kernel_batches += 1
            self.kernel_queries += batch_size
            self._batch_size_buckets[
                bisect_left(_BATCH_BUCKET_BOUNDS, batch_size)
            ] += 1
            for steps in steps_per_query:
                self._step_buckets[bisect_left(_STEP_BUCKET_BOUNDS, steps)] += 1
                self._steps_total += steps

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_invalidation(self, entries: int, *, flush: bool = False) -> None:
        with self._lock:
            self.invalidated_results += entries
            if flush:
                self.flushes += 1

    def record_deferred(self, events: int, depth: int) -> None:
        """Bill mutations queued by the staleness scheduler.

        ``events`` is how many arrivals this deferral added; ``depth`` is
        the stale-queue depth after it (also tracked as a high-water
        mark, the dashboard's backlog gauge).
        """
        if events <= 0:
            raise ConfigurationError(f"events must be positive, got {events}")
        with self._lock:
            self.deferred_events += events
            self.stale_depth = depth
            self.max_stale_depth = max(self.max_stale_depth, depth)

    def record_repair(
        self, events: int, latency: float, *, reason: str = "manual", depth: int = 0
    ) -> None:
        """Bill one scheduler flush draining ``events`` deferred arrivals.

        ``reason`` attributes the trigger: ``"budget"`` (error budget
        exceeded), ``"read"`` (repair-on-read for a stale query seed), or
        anything else (manual / close).  ``depth`` is the stale-queue
        depth left behind (normally 0).
        """
        with self._lock:
            self.repairs += 1
            self.repaired_events += events
            if reason == "budget":
                self.budget_repairs += 1
            elif reason == "read":
                self.read_repairs += 1
            self.stale_depth = depth
            self._repair_latency_buckets[
                bisect_left(_BUCKET_BOUNDS, latency)
            ] += 1
            self._repair_latency_count += 1
            self._repair_latency_total += latency
            self._repair_latency_max = max(self._repair_latency_max, latency)

    def _record_latency(self, latency: float) -> None:
        self._latency_buckets[bisect_left(_BUCKET_BOUNDS, latency)] += 1
        self._latency_count += 1
        self._latency_total += latency
        self._latency_max = max(self._latency_max, latency)

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of *offered* load (queries + sheds) that was shed."""
        offered = self.queries + self.shed
        return self.shed / offered if offered else 0.0

    @property
    def mean_latency(self) -> float:
        return (
            self._latency_total / self._latency_count
            if self._latency_count
            else 0.0
        )

    @property
    def max_latency(self) -> float:
        return self._latency_max

    @property
    def mean_kernel_batch(self) -> float:
        """Mean cache-miss queries per kernel invocation."""
        return (
            self.kernel_queries / self.kernel_batches
            if self.kernel_batches
            else 0.0
        )

    @property
    def mean_steps_per_query(self) -> float:
        """Mean realized walk length (visits) per kernel-served query."""
        return (
            self._steps_total / self.kernel_queries
            if self.kernel_queries
            else 0.0
        )

    @property
    def mean_repair_latency(self) -> float:
        return (
            self._repair_latency_total / self._repair_latency_count
            if self._repair_latency_count
            else 0.0
        )

    @property
    def max_repair_latency(self) -> float:
        return self._repair_latency_max

    def repair_latency_percentile(self, p: float) -> float:
        """Repair-latency percentile ``p`` in [0, 1] (bucket estimate)."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"percentile must be in [0, 1], got {p}")
        with self._lock:
            if not self._repair_latency_count:
                return 0.0
            rank = p * self._repair_latency_count
            seen = 0
            for index, count in enumerate(self._repair_latency_buckets):
                seen += count
                if seen >= rank:
                    if index < len(_BUCKET_BOUNDS):
                        return _BUCKET_BOUNDS[index]
                    return self._repair_latency_max
            return self._repair_latency_max

    def kernel_batch_size_histogram(self) -> Dict[int, int]:
        """Nonzero batch-size buckets as ``{upper_bound: count}``."""
        with self._lock:
            return {
                _BATCH_BUCKET_BOUNDS[index]: count
                for index, count in enumerate(
                    self._batch_size_buckets[: len(_BATCH_BUCKET_BOUNDS)]
                )
                if count
            }

    def steps_per_query_histogram(self) -> Dict[int, int]:
        """Nonzero steps-per-query buckets as ``{upper_bound: count}``."""
        with self._lock:
            return {
                _STEP_BUCKET_BOUNDS[index]: count
                for index, count in enumerate(
                    self._step_buckets[: len(_STEP_BUCKET_BOUNDS)]
                )
                if count
            }

    def percentile(self, p: float) -> float:
        """Latency percentile ``p`` in [0, 1] (bucket upper-bound estimate)."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"percentile must be in [0, 1], got {p}")
        with self._lock:
            if not self._latency_count:
                return 0.0
            rank = p * self._latency_count
            seen = 0
            for index, count in enumerate(self._latency_buckets):
                seen += count
                if seen >= rank:
                    if index < len(_BUCKET_BOUNDS):
                        return _BUCKET_BOUNDS[index]
                    return self._latency_max
            return self._latency_max

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """All counters and headline rates, frozen (safe to keep around)."""
        with self._lock:
            return {
                "queries": self.queries,
                "hits": self.hits,
                "misses": self.misses,
                "shed": self.shed,
                "coalesced": self.coalesced,
                "invalidated_results": self.invalidated_results,
                "flushes": self.flushes,
                "hit_rate": self.hits / self.queries if self.queries else 0.0,
                "shed_rate": (
                    self.shed / (self.queries + self.shed)
                    if (self.queries + self.shed)
                    else 0.0
                ),
                "mean_latency": (
                    self._latency_total / self._latency_count
                    if self._latency_count
                    else 0.0
                ),
                "max_latency": self._latency_max,
                "kernel_batches": self.kernel_batches,
                "kernel_queries": self.kernel_queries,
                "mean_kernel_batch": (
                    self.kernel_queries / self.kernel_batches
                    if self.kernel_batches
                    else 0.0
                ),
                "mean_steps_per_query": (
                    self._steps_total / self.kernel_queries
                    if self.kernel_queries
                    else 0.0
                ),
                "deferred_events": self.deferred_events,
                "stale_depth": self.stale_depth,
                "max_stale_depth": self.max_stale_depth,
                "repairs": self.repairs,
                "repaired_events": self.repaired_events,
                "budget_repairs": self.budget_repairs,
                "read_repairs": self.read_repairs,
                "mean_repair_latency": (
                    self._repair_latency_total / self._repair_latency_count
                    if self._repair_latency_count
                    else 0.0
                ),
                "max_repair_latency": self._repair_latency_max,
            }

    def render(self) -> str:
        """Human-readable one-screen summary (examples print this)."""
        snap = self.snapshot()
        lines = [
            f"queries {snap['queries']:.0f}  "
            f"hit rate {snap['hit_rate']:.1%}  "
            f"shed {snap['shed']:.0f} ({snap['shed_rate']:.1%})  "
            f"coalesced {snap['coalesced']:.0f}",
            f"invalidated results {snap['invalidated_results']:.0f}  "
            f"full flushes {snap['flushes']:.0f}",
            f"latency mean {snap['mean_latency'] * 1e3:.3f} ms  "
            f"p50 {self.percentile(0.50) * 1e3:.3f} ms  "
            f"p99 {self.percentile(0.99) * 1e3:.3f} ms  "
            f"max {snap['max_latency'] * 1e3:.3f} ms",
            f"kernel batches {snap['kernel_batches']:.0f}  "
            f"mean batch {snap['mean_kernel_batch']:.1f}  "
            f"mean steps/query {snap['mean_steps_per_query']:.0f}",
            f"stale queue {snap['stale_depth']:.0f} (max {snap['max_stale_depth']:.0f})  "
            f"deferred {snap['deferred_events']:.0f}  "
            f"repairs {snap['repairs']:.0f} "
            f"(budget {snap['budget_repairs']:.0f}, read {snap['read_repairs']:.0f})  "
            f"repair mean {snap['mean_repair_latency'] * 1e3:.3f} ms "
            f"p99 {self.repair_latency_percentile(0.99) * 1e3:.3f} ms",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ServeStats(queries={self.queries}, hit_rate={self.hit_rate:.2f}, "
            f"shed={self.shed}, coalesced={self.coalesced})"
        )
