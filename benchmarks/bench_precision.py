"""E-F5: short-walk precision benchmark (§4.4, Figure 5).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workload,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os

from repro.experiments.exp_precision import run_fig5

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 1000,
        "num_edges": 12_000,
        "num_users": 3,
        "true_length": 10_000,
        "query_length": 1_000,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 4000,
        "num_edges": 48_000,
        "num_users": 8,
        "true_length": 30_000,
        "query_length": 3_000,
        "rng": 42,
    }
)


def test_e_f5(benchmark, once):
    result = once(benchmark, run_fig5, **PARAMS)
    curve = {
        row["recall"]: row["interpolated avg precision"] for row in result.rows
    }
    if not FAST_MODE:
        # the paper's reading: strong precision deep into the recall range
        assert curve[0.0] > 0.9
        assert curve[0.5] > 0.6
        assert curve[0.8] > 0.4  # paper: ≈0.8 at Twitter scale/lengths
    # precision is non-increasing in recall (interpolation guarantees it)
    values = [curve[k] for k in sorted(curve)]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
    print()
    print(result.render())
