"""Personalized PageRank by walk stitching (§3, Algorithm 1).

A personalized query for seed ``w`` runs one long reset walk that jumps
back to ``w`` instead of to a uniform node.  Instead of paying one store
round-trip per step, Algorithm 1 opportunistically splices in the ``R``
walk segments already stored for global PageRank:

* an ε-coin resets the walk to the seed;
* otherwise, if the current node has an unused stored segment, the whole
  segment is appended and the walk resets to the seed (the segment already
  ended with a reset);
* otherwise, if the node's state is in memory, one plain random step is
  taken;
* otherwise the node is *fetched* — the single expensive operation, whose
  count Theorem 8 bounds by ``1 + (2(1−α)/nR)^{1/α−1} · s^{1/α}``.

Dangling nodes reset to the seed (standard PPR-with-restart convention;
the paper's Twitter graph makes the case vanishingly rare).

The result object records everything the experiments need: per-node visit
counts, the fetch count, and the composition of the walk (segment visits
vs single steps vs resets).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import RngLike, ensure_rng
from repro.store.pagerank_store import FETCH_FULL, FetchResult, PageRankStore

__all__ = ["PersonalizedPageRank", "StitchedWalkResult"]


@dataclass
class _FetchedState:
    """In-memory cache entry for a fetched node."""

    neighbors: list[int]
    segments: list[list[int]]
    next_unused: int = 0
    out_degree: int = 0

    def take_segment(self) -> Optional[list[int]]:
        if self.next_unused < len(self.segments):
            segment = self.segments[self.next_unused]
            self.next_unused += 1
            return segment
        return None


@dataclass
class StitchedWalkResult:
    """Outcome of one Algorithm-1 walk."""

    seed: int
    length: int
    visit_counts: Counter
    fetches: int
    segments_used: int = 0
    segment_steps: int = 0
    plain_steps: int = 0
    resets: int = 0

    def frequencies(self, num_nodes: int) -> np.ndarray:
        """Visit frequencies as a dense vector (≈ personalized PageRank)."""
        scores = np.zeros(num_nodes, dtype=np.float64)
        for node, count in self.visit_counts.items():
            if node < num_nodes:
                scores[node] = count
        return scores / max(self.length, 1)

    def top(
        self, k: int, *, exclude: Iterable[int] = ()
    ) -> list[tuple[int, int]]:
        """Most-visited ``k`` nodes as ``(node, visits)``, minus ``exclude``.

        Ties broken by node id for determinism.
        """
        banned = set(exclude)
        ranked = sorted(
            (
                (node, count)
                for node, count in self.visit_counts.items()
                if node not in banned
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]


class PersonalizedPageRank:
    """Algorithm-1 query engine over a :class:`PageRankStore`."""

    def __init__(
        self,
        pagerank_store: PageRankStore,
        *,
        reset_probability: float = 0.2,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        self.store = pagerank_store
        self.reset_probability = reset_probability
        self._rng = ensure_rng(rng)

    def stitched_walk(
        self,
        seed: int,
        length: int,
        *,
        rng: RngLike = None,
        use_segments: bool = True,
    ) -> StitchedWalkResult:
        """Run Algorithm 1 from ``seed`` until the path reaches ``length``.

        ``use_segments=False`` disables splicing (the "crude way" of
        Remark 2: every step pays its own store traffic), which is the
        baseline the fetch experiments compare against.
        """
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length}")
        generator = ensure_rng(rng) if rng is not None else self._rng
        reset_probability = self.reset_probability

        result = StitchedWalkResult(
            seed=seed, length=0, visit_counts=Counter(), fetches=0
        )
        fetched: dict[int, _FetchedState] = {}
        counts = result.visit_counts

        current = seed
        counts[seed] += 1
        result.length = 1

        while result.length < length:
            if generator.random() < reset_probability:
                current = seed
                counts[seed] += 1
                result.length += 1
                result.resets += 1
                continue

            state = fetched.get(current)
            if state is None:
                state = self._fetch(current, generator)
                fetched[current] = state
                result.fetches += 1
                continue  # re-enter the loop with the node now in memory

            segment = state.take_segment() if use_segments else None
            if segment is not None:
                appended = len(segment) - 1  # segment[0] is `current` itself
                for node in segment[1:]:
                    counts[node] += 1
                result.length += appended
                result.segment_steps += appended
                result.segments_used += 1
                # The segment ended with its own reset; jump back to seed.
                current = seed
                counts[seed] += 1
                result.length += 1
                result.resets += 1
                continue

            if state.out_degree == 0:
                # Dangling: reset to the seed (PPR-with-restart convention).
                current = seed
                counts[seed] += 1
                result.length += 1
                result.resets += 1
                continue

            current = self._step(current, state, generator)
            counts[current] += 1
            result.length += 1
            result.plain_steps += 1

        return result

    def _fetch(self, node: int, rng: np.random.Generator) -> _FetchedState:
        fetch = self.store.fetch(node, rng)
        return _FetchedState(
            neighbors=list(fetch.neighbors),
            segments=fetch.segments,
            out_degree=fetch.out_degree,
        )

    def _step(
        self, node: int, state: _FetchedState, rng: np.random.Generator
    ) -> int:
        if self.store.fetch_mode == FETCH_FULL:
            return state.neighbors[int(rng.integers(len(state.neighbors)))]
        # Remark-1 mode: the fetch carried one sampled edge; further steps
        # at this node must sample fresh edges from the social store.
        if state.neighbors:
            sampled = state.neighbors[0]
            state.neighbors = []
            return sampled
        return self.store.social_store.random_out_neighbor(node, rng)

    # ------------------------------------------------------------------

    def scores(
        self,
        seed: int,
        length: int,
        *,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Personalized PageRank estimates (visit frequencies) for ``seed``."""
        walk = self.stitched_walk(seed, length, rng=rng)
        return walk.frequencies(self.store.social_store.num_nodes)

    def top_k(
        self,
        seed: int,
        k: int,
        length: int,
        *,
        exclude_seed: bool = True,
        exclude_friends: bool = False,
        rng: RngLike = None,
    ) -> StitchedWalkResult:
        """Run a walk sized for a top-``k`` query and leave ranking to caller.

        ``exclude_friends`` reproduces the paper's evaluation protocol
        (recommendation systems never surface existing friends).
        The walk result is returned so fetch counts stay inspectable;
        call ``.top(k, exclude=...)`` on it for the ranking.
        """
        walk = self.stitched_walk(seed, length, rng=rng)
        excluded: set[int] = set()
        if exclude_seed:
            excluded.add(seed)
        if exclude_friends:
            excluded.update(self.store.social_store.out_neighbors(seed))
        walk.visit_counts = Counter(
            {
                node: count
                for node, count in walk.visit_counts.items()
                if node not in excluded
            }
        )
        return walk
