"""Multi-process serve frontend: asyncio-friendly fan-out over workers.

:class:`MultiProcessFrontend` is the coordinator-side half of the
multi-process serve tier.  It owns

* the **write path** — the live :class:`~repro.core.incremental.
  IncrementalPageRank` engine stays in this process; workers never mutate;
* the **publish path** — an :class:`~repro.serve.epochs.ArenaPublisher`
  snapshots the engine into mmap-able generation directories and
  :meth:`publish_epoch` pushes the bump through every worker queue (a
  FIFO barrier: see :mod:`repro.serve.epochs` for the protocol proof);
* the **read fan-out** — N spawned worker processes
  (:func:`~repro.serve.worker.worker_main`), each attached read-only to
  the current generation, each fronted by its own in-process
  :class:`~repro.serve.batcher.RequestBatcher`.

Requests route to workers **seed-affine** (the same Fibonacci multiplier
hash the sharded store uses), so a hot seed always lands on the worker
whose result/fetch caches already hold it.  Admission control is a
bounded in-flight window shared across workers: past ``max_in_flight``
outstanding requests, new work is shed with
:class:`~repro.errors.LoadShedError` — backpressure at the front door
instead of unbounded queue growth.

The blocking API is :meth:`submit` (one request → ``Future``) and
:meth:`run` (a wave of requests → ordered results); the asyncio façade is
:meth:`asubmit` / :meth:`arun`, which wrap the same futures for an event
loop (``examples/api_server.py`` serves HTTP straight off them).  A
``Future`` resolves in the reader thread that drains the shared response
queue, so event loops and blocking callers coexist on one frontend.

Observability: every outcome bills ``repro_serve_mp_*`` metrics into
:attr:`registry`, and when tracing is on, worker-side spans ship home
with each batch and are grafted under the coordinator's dispatch span
(:meth:`~repro.obs.tracing.Tracer.graft`), so one trace shows the full
cross-process request path.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue as queue_module
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ConfigurationError, LoadShedError, ServeError
from repro.lifecycle import register_for_shutdown
from repro.obs import MetricsRegistry, Tracer
from repro.obs.metrics import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS
from repro.serve.batcher import QueryRequest
from repro.serve.epochs import ArenaPublisher
from repro.serve.worker import (
    BATCH,
    EPOCH,
    EPOCH_OK,
    ERROR,
    INIT_ERROR,
    READY,
    RESULT,
    STOP,
    STOPPED,
    WorkerConfig,
    spawn_worker,
)

__all__ = ["MultiProcessFrontend"]

#: Fibonacci multiplier (golden-ratio hash) — the same seed scrambler the
#: sharded store routes with, so routing is uniform even for dense ids.
_HASH_MULTIPLIER = 0x9E3779B9

_READER_STOP = ("__reader_stop__",)


class _PendingBatch:
    """Coordinator-side record of one dispatched batch."""

    __slots__ = ("future", "count", "span", "worker_id", "started")

    def __init__(self, future, count, span, worker_id, started):
        self.future = future
        self.count = count
        self.span = span
        self.worker_id = worker_id
        self.started = started


class _EpochWait:
    """Barrier state for one in-flight epoch bump."""

    __slots__ = ("pending", "event", "errors")

    def __init__(self, pending: Set[int]):
        self.pending = pending
        self.event = threading.Event()
        self.errors: List[str] = []


class MultiProcessFrontend:
    """Admission-controlled fan-out of queries over worker processes."""

    def __init__(
        self,
        engine,
        *,
        num_workers: int = 2,
        root=None,
        max_in_flight: int = 256,
        config: Optional[WorkerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        retain: int = 2,
        start_timeout: float = 120.0,
    ) -> None:
        """Publish ``engine``'s state and stand up ``num_workers`` workers.

        ``engine`` stays this process's mutable write path — apply updates
        to it directly (between query waves), then :meth:`publish_epoch`
        to make them visible to workers.  ``root`` is the publish
        directory (a private temp dir by default, removed on close).
        ``config`` pins the workers' serving stack; by default it inherits
        ``trace`` from the coordinator ``tracer`` so spans ship exactly
        when someone is looking.
        """
        if num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be positive, got {num_workers}"
            )
        if max_in_flight <= 0:
            raise ConfigurationError(
                f"max_in_flight must be positive, got {max_in_flight}"
            )
        self.engine = engine
        self.num_workers = num_workers
        self.max_in_flight = max_in_flight
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.config = (
            config
            if config is not None
            else WorkerConfig(trace=self.tracer.enabled)
        )
        self._owns_root = root is None
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-serve-mp-")
        self.publisher = ArenaPublisher(root, retain=retain)

        reg = self.registry
        self._m_requests = reg.counter(
            "repro_serve_mp_requests_total",
            "Requests admitted to the multi-process serve tier",
            labels=("kind",),
        )
        self._m_shed = reg.counter(
            "repro_serve_mp_shed_total",
            "Requests refused by the frontend in-flight window",
        )
        self._m_batches = reg.counter(
            "repro_serve_mp_batches_total",
            "Batches dispatched to workers",
            labels=("worker",),
        )
        self._m_errors = reg.counter(
            "repro_serve_mp_errors_total",
            "Worker-reported batch/epoch failures",
            labels=("worker",),
        )
        self._m_in_flight = reg.gauge(
            "repro_serve_mp_in_flight",
            "Requests dispatched and not yet resolved",
        )
        self._m_workers = reg.gauge(
            "repro_serve_mp_workers", "Live worker processes"
        )
        self._m_generation = reg.gauge(
            "repro_serve_mp_generation", "Published arena generation"
        )
        self._m_epochs = reg.counter(
            "repro_serve_mp_epoch_swaps_total",
            "Completed epoch bumps (all workers swapped)",
        )
        self._m_latency = reg.histogram(
            "repro_serve_mp_batch_latency_seconds",
            "Dispatch-to-resolution latency per batch",
            buckets=LATENCY_BUCKETS,
        )
        self._m_batch_size = reg.histogram(
            "repro_serve_mp_batch_size",
            "Requests per dispatched batch",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._m_grafted = reg.counter(
            "repro_serve_mp_spans_grafted_total",
            "Worker spans grafted into the coordinator trace",
        )

        self._lock = threading.Lock()
        self._closed = False
        self._in_flight = 0
        self._next_batch_id = 0
        self._next_epoch_id = 0
        self._batches: Dict[int, _PendingBatch] = {}
        self._epochs: Dict[int, _EpochWait] = {}

        generation, snapshot = self.publisher.publish(engine)
        self.generation = generation
        self._m_generation.set(float(generation))

        # spawn, not fork: the coordinator owns thread pools and live
        # locks a fork would duplicate mid-state; spawn also proves the
        # snapshot attach path carries every bit of worker state
        self._context = multiprocessing.get_context("spawn")
        self._queues = [self._context.Queue() for _ in range(num_workers)]
        self._responses = self._context.Queue()
        self._processes = [
            spawn_worker(
                self._context,
                worker_id,
                snapshot,
                generation,
                self.config,
                self._queues[worker_id],
                self._responses,
            )
            for worker_id in range(num_workers)
        ]
        try:
            self._await_ready(start_timeout)
        except BaseException:
            self._teardown_processes()
            if self._owns_root:
                shutil.rmtree(self.publisher.root, ignore_errors=True)
            raise
        self._m_workers.set(float(num_workers))
        self._reader = threading.Thread(
            target=self._read_responses,
            name="repro-serve-mp-reader",
            daemon=True,
        )
        self._reader.start()
        # exit-time safety net (see repro.lifecycle): abandoned frontends
        # still stop their workers and reader before interpreter teardown
        register_for_shutdown(self)

    # ------------------------------------------------------------------
    # Startup / teardown
    # ------------------------------------------------------------------

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        ready: Set[int] = set()
        while len(ready) < self.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"workers not ready within {timeout:.0f}s "
                    f"({len(ready)}/{self.num_workers})"
                )
            try:
                message = self._responses.get(timeout=remaining)
            except queue_module.Empty:
                continue
            tag = message[0]
            if tag == READY:
                ready.add(message[1])
            elif tag == INIT_ERROR:
                _, worker_id, (type_name, text) = message
                raise ServeError(
                    f"worker {worker_id} failed to attach: {type_name}: {text}"
                )

    def _teardown_processes(self, timeout: float = 10.0) -> None:
        for q in self._queues:
            try:
                q.put((STOP,))
            except (ValueError, OSError):  # pragma: no cover - closed queue
                pass
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=timeout)

    def close(self) -> None:
        """Stop workers, join the reader, fail outstanding futures.

        Idempotent; also the lifecycle registry's exit hook.  Outstanding
        futures resolve with :class:`ServeError` rather than hanging their
        waiters forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._teardown_processes()
        self._responses.put(_READER_STOP)
        self._reader.join(timeout=10.0)
        with self._lock:
            pending = list(self._batches.values())
            self._batches.clear()
            self._in_flight = 0
            epochs = list(self._epochs.values())
            self._epochs.clear()
        for batch in pending:
            if not batch.future.done():
                batch.future.set_exception(
                    ServeError("frontend closed with the batch in flight")
                )
        for wait in epochs:
            wait.errors.append("frontend closed mid-epoch")
            wait.event.set()
        for q in [*self._queues, self._responses]:
            q.close()
        self._m_workers.set(0.0)
        self._m_in_flight.set(0.0)
        if self._owns_root:
            shutil.rmtree(self.publisher.root, ignore_errors=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "MultiProcessFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def route(self, seed: int) -> int:
        """Seed-affine worker routing (Fibonacci hash, cache-friendly)."""
        return ((seed * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.num_workers

    def _dispatch(
        self, worker_id: int, requests: Sequence[QueryRequest]
    ) -> Future:
        """Enqueue one batch on ``worker_id``; future resolves to the
        worker's result list (or fails — shedding, worker error)."""
        future: Future = Future()
        count = len(requests)
        with self._lock:
            if self._closed:
                future.set_exception(ServeError("frontend is closed"))
                return future
            if self._in_flight + count > self.max_in_flight:
                self._m_shed.inc(count)
                future.set_exception(
                    LoadShedError(self._in_flight, self.max_in_flight)
                )
                return future
            self._in_flight += count
            self._m_in_flight.set(float(self._in_flight))
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            span = (
                self.tracer.start_leaf(
                    "serve.mp.batch", worker=worker_id, size=count
                )
                if self.tracer.enabled
                else None
            )
            self._batches[batch_id] = _PendingBatch(
                future, count, span, worker_id, time.perf_counter()
            )
        for request in requests:
            self._m_requests.inc(kind=request.kind)
        self._m_batches.inc(worker=str(worker_id))
        self._m_batch_size.observe(float(count))
        self._queues[worker_id].put((BATCH, batch_id, tuple(requests)))
        return future

    def submit(self, request: QueryRequest) -> Future:
        """Admit one request; the future resolves to its result.

        Sheds with :class:`LoadShedError` past ``max_in_flight``.  The
        worker-side batcher may *also* shed under its own window; that
        surfaces as a ``None`` result (the batcher's drain contract).
        """
        batch_future = self._dispatch(self.route(request.seed), [request])
        outer: Future = Future()

        def _unwrap(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(done.result()[0])

        batch_future.add_done_callback(_unwrap)
        return outer

    def run(
        self, requests: Sequence[QueryRequest]
    ) -> List[Optional[object]]:
        """Answer a wave of requests; results in request order.

        Requests are grouped seed-affine into one batch per worker —
        inside each worker the whole group is answered by the batcher's
        one-kernel-per-drain path.  Shed groups (frontend window) and
        shed requests (worker window) yield ``None``; worker failures
        propagate as :class:`ServeError`.
        """
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(self.route(request.seed), []).append(index)
        futures = {
            worker_id: self._dispatch(
                worker_id, [requests[i] for i in indices]
            )
            for worker_id, indices in groups.items()
        }
        results: List[Optional[object]] = [None] * len(requests)
        for worker_id, indices in groups.items():
            try:
                values = futures[worker_id].result()
            except LoadShedError:
                continue
            for index, value in zip(indices, values):
                results[index] = value
        return results

    # ------------------------------------------------------------------
    # asyncio façade
    # ------------------------------------------------------------------

    async def asubmit(self, request: QueryRequest):
        """``await``-able :meth:`submit` (for event-loop servers)."""
        return await asyncio.wrap_future(self.submit(request))

    async def arun(self, requests: Sequence[QueryRequest]):
        """``await``-able :meth:`run`: same grouping, loop stays free."""
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(self.route(request.seed), []).append(index)
        results: List[Optional[object]] = [None] * len(requests)

        async def _gather(worker_id: int, indices: List[int]) -> None:
            future = self._dispatch(
                worker_id, [requests[i] for i in indices]
            )
            try:
                values = await asyncio.wrap_future(future)
            except LoadShedError:
                return
            for index, value in zip(indices, values):
                results[index] = value

        await asyncio.gather(
            *(_gather(w, idx) for w, idx in groups.items())
        )
        return results

    # ------------------------------------------------------------------
    # Epoch bump
    # ------------------------------------------------------------------

    def publish_epoch(self, timeout: float = 120.0) -> int:
        """Publish the engine's current state and swap every worker to it.

        Blocks until all workers ack the swap (the FIFO queue guarantees
        batches enqueued before the bump were answered from the old
        generation).  Old generations beyond ``retain`` are pruned only
        after the acks, so no worker is still attaching to a pruned
        directory.  Returns the new generation.
        """
        with self._lock:
            if self._closed:
                raise ServeError("frontend is closed")
            epoch_id = self._next_epoch_id = self._next_epoch_id + 1
            wait = _EpochWait(set(range(self.num_workers)))
            self._epochs[epoch_id] = wait
        generation, snapshot = self.publisher.publish(self.engine, prune=False)
        for q in self._queues:
            q.put((EPOCH, epoch_id, generation, str(snapshot)))
        if not wait.event.wait(timeout):
            with self._lock:
                self._epochs.pop(epoch_id, None)
            raise ServeError(
                f"epoch {generation} not acked within {timeout:.0f}s "
                f"(workers pending: {sorted(wait.pending)})"
            )
        with self._lock:
            self._epochs.pop(epoch_id, None)
        if wait.errors:
            raise ServeError(
                f"epoch {generation} failed on some workers: "
                + "; ".join(wait.errors)
            )
        self.generation = generation
        self._m_generation.set(float(generation))
        self._m_epochs.inc()
        self.publisher.prune()
        return generation

    # ------------------------------------------------------------------
    # Response reader
    # ------------------------------------------------------------------

    def _read_responses(self) -> None:
        while True:
            try:
                message = self._responses.get()
            except (EOFError, OSError):  # pragma: no cover - queue closed
                return
            tag = message[0]
            if message == _READER_STOP:
                return
            if tag == RESULT:
                self._on_result(message)
            elif tag == ERROR:
                self._on_error(message)
            elif tag == EPOCH_OK:
                self._on_epoch_ok(message)
            elif tag == STOPPED:
                self._m_workers.dec()
            # READY after startup (or unknown tags) are ignored

    def _pop_batch(self, batch_id: int) -> Optional[_PendingBatch]:
        with self._lock:
            batch = self._batches.pop(batch_id, None)
            if batch is not None:
                self._in_flight -= batch.count
                self._m_in_flight.set(float(self._in_flight))
        return batch

    def _on_result(self, message) -> None:
        _, worker_id, batch_id, results, spans = message
        batch = self._pop_batch(batch_id)
        if batch is None:  # pragma: no cover - late reply after close
            return
        self._m_latency.observe(time.perf_counter() - batch.started)
        if spans:
            grafted = self.tracer.graft(
                spans, parent=batch.span, origin=f"worker-{worker_id}"
            )
            self._m_grafted.inc(grafted)
        self.tracer.finish_leaf(batch.span)
        batch.future.set_result(results)

    def _on_error(self, message) -> None:
        _, worker_id, batch_id, (type_name, text) = message
        self._m_errors.inc(worker=str(worker_id))
        if batch_id < 0:
            # an epoch swap failed on this worker (it keeps serving the
            # old generation); unblock the barrier with the error recorded
            with self._lock:
                wait = self._epochs.get(-batch_id)
                if wait is not None:
                    wait.errors.append(
                        f"worker {worker_id}: {type_name}: {text}"
                    )
                    wait.pending.discard(worker_id)
                    if not wait.pending:
                        wait.event.set()
            return
        batch = self._pop_batch(batch_id)
        if batch is None:  # pragma: no cover - late reply after close
            return
        self.tracer.finish_leaf(batch.span)
        batch.future.set_exception(
            ServeError(f"worker {worker_id} failed: {type_name}: {text}")
        )

    def _on_epoch_ok(self, message) -> None:
        _, worker_id, epoch_id, _generation = message
        with self._lock:
            wait = self._epochs.get(epoch_id)
            if wait is None:  # pragma: no cover - timed-out epoch
                return
            wait.pending.discard(worker_id)
            if not wait.pending:
                wait.event.set()

    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def __repr__(self) -> str:
        return (
            f"MultiProcessFrontend(workers={self.num_workers}, "
            f"generation={self.generation}, in_flight={self.in_flight}, "
            f"closed={self._closed})"
        )
