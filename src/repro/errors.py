"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
still letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for graph-structure errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} does not exist")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) does not exist")
        self.source = source
        self.target = target


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was inserted that already exists (multi-edges unsupported)."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) already exists")
        self.source = source
        self.target = target


class SelfLoopError(GraphError, ValueError):
    """A self-loop was inserted into a graph configured to reject them."""

    def __init__(self, node: int) -> None:
        super().__init__(f"self-loop at node {node!r} is not allowed")
        self.node = node


class EmptyNeighborhoodError(GraphError):
    """Uniform neighbour sampling was requested at a node with no neighbours."""

    def __init__(self, node: int, direction: str) -> None:
        super().__init__(f"node {node!r} has no {direction}-neighbours to sample")
        self.node = node
        self.direction = direction


class StoreError(ReproError):
    """Base class for storage-layer errors (social store / pagerank store)."""


class StaleSnapshotError(StoreError):
    """A stats delta was requested against a snapshot from before a reset.

    ``CallStats.reset()`` starts a new counting epoch; a snapshot taken in
    an earlier epoch can no longer produce a meaningful delta (the naive
    subtraction would return negative counts).  Re-snapshot and retry.
    """

    def __init__(self, snapshot_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"snapshot from epoch {snapshot_epoch} is stale: stats were "
            f"reset (current epoch {current_epoch}); take a new snapshot"
        )
        self.snapshot_epoch = snapshot_epoch
        self.current_epoch = current_epoch


class StoreClosedError(StoreError):
    """An operation was issued against a store that has been closed."""


class WalkStateError(ReproError):
    """A walk segment or walk store reached an internal inconsistency."""


class ServeError(ReproError):
    """Base class for query-serving-layer errors."""


class LoadShedError(ServeError):
    """A query was refused by admission control (queue depth exceeded).

    Shedding is the serving layer working as designed under overload —
    callers should back off and retry, not treat this as a crash.
    """

    def __init__(self, queue_depth: int, max_queue_depth: int) -> None:
        super().__init__(
            f"request shed: {queue_depth} requests in flight "
            f"(admission limit {max_queue_depth})"
        )
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth


class WalError(ReproError):
    """The write-ahead log is unusable (unwritable file, corrupt prefix).

    A *torn tail* — an incomplete or checksum-failed final record from a
    crash mid-append — is **not** an error: recovery truncates it and
    replays the intact prefix.  ``WalError`` is for damage that makes the
    log itself untrustworthy.
    """


class InjectedFault(ReproError):
    """A fault deliberately raised by an armed :class:`repro.faults.FaultPlan`.

    Simulates a crash at a hook point (mid-snapshot write, mid-WAL
    append).  Production code never raises this; chaos tests catch it
    where the simulated crash would have killed the process.
    """


class ConfigurationError(ReproError, ValueError):
    """Invalid parameter passed to an estimator, engine, or experiment."""


class NotSupportedError(ReproError):
    """A valid-but-unimplemented combination of options was requested."""
