"""repro — Fast Incremental and Personalized PageRank (VLDB 2010).

A production-shaped reproduction of Bahmani, Chowdhury & Goel's Monte Carlo
walk-segment system: global PageRank kept fresh under edge arrivals and
deletions in ``O(nR ln m / ε²)`` total work, SALSA likewise, and
personalized PageRank / SALSA answered in real time by stitching the stored
segments with provably few database fetches.

Quickstart::

    from repro import IncrementalPageRank, PersonalizedPageRank
    from repro.graph import directed_preferential_attachment

    graph = directed_preferential_attachment(10_000, rng=7)
    engine = IncrementalPageRank.from_graph(graph, walks_per_node=10, rng=7)
    engine.add_edge(3, 1729)            # O(1/t)-ish amortized maintenance
    print(engine.top(10))               # always-fresh global PageRank

    ppr = PersonalizedPageRank(engine.pagerank_store, rng=7)
    walk = ppr.top_k(seed=42, k=20, length=5_000, exclude_friends=True)
    print(walk.top(20), walk.fetches)   # fetches ≪ walk length (Thm 8)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.core import (
    BatchUpdateReport,
    BidirectionalKernel,
    ColumnarWalkStore,
    IncrementalPageRank,
    IncrementalSALSA,
    MonteCarloPageRank,
    PersonalizedPageRank,
    PersonalizedSALSA,
    PprToTargetResult,
    QueryKernel,
    ReversePushEngine,
    SalsaQueryKernel,
    ShardedWalkIndex,
    StalenessScheduler,
    TopKResult,
    UpdateReport,
    WalkIndex,
    WalkSegment,
    WalkStore,
    make_walk_store,
    theory,
    top_k_personalized,
)
from repro.errors import ReproError
from repro.graph import DynamicDiGraph
from repro.obs import (
    MetricsRegistry,
    RingSink,
    Span,
    StageProfiler,
    Tracer,
    get_level,
    set_level,
)
from repro.serve import QueryEngine, RequestBatcher, ServeStats
from repro.store import PageRankStore, SocialStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "DynamicDiGraph",
    "SocialStore",
    "PageRankStore",
    "WalkSegment",
    "WalkIndex",
    "WalkStore",
    "ColumnarWalkStore",
    "ShardedWalkIndex",
    "make_walk_store",
    "MonteCarloPageRank",
    "IncrementalPageRank",
    "IncrementalSALSA",
    "PersonalizedPageRank",
    "PersonalizedSALSA",
    "QueryKernel",
    "SalsaQueryKernel",
    "ReversePushEngine",
    "BidirectionalKernel",
    "PprToTargetResult",
    "UpdateReport",
    "BatchUpdateReport",
    "StalenessScheduler",
    "TopKResult",
    "top_k_personalized",
    "QueryEngine",
    "RequestBatcher",
    "ServeStats",
    "MetricsRegistry",
    "StageProfiler",
    "Tracer",
    "Span",
    "RingSink",
    "get_level",
    "set_level",
    "theory",
]
