"""``python -m repro.experiments`` — see :mod:`repro.experiments.runner`."""

from repro.experiments.runner import main

raise SystemExit(main())
