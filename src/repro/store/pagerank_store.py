"""The PageRank Store: walk segments behind a fetch API.

§2.2: "We can keep the random walk segments in another database, say
PageRank Store. For each node v, we also keep two counters: one, denoted by
W(v), keeping track of the number of walk segments visiting v, and one,
denoted by d(v), keeping track of the outdegree of v."

§3: "A query to this database for a node u returns all R walk segments
starting at u as well as all the neighbors of u. We call such a query a
'fetch' operation."

This module is that database.  It owns a :class:`~repro.core.walks.WalkStore`
(segments + visit index), mirrors the d(v) counter, exposes the activation
probability ``1 − (1 − 1/d(v))^{W(v)}`` used to decide whether an arriving
edge needs to touch the store at all, and implements ``fetch`` with strict
accounting — the fetch count *is* the paper's cost metric for personalized
queries (Theorem 8 / Figure 6).

Remark 1's memory-friendly variant (return one sampled out-edge instead of
the full adjacency, at the cost of ≤ 2× more fetches) is available as
``fetch_mode="sampled_edge"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.walks import WalkIndex, WalkSegment, WalkStore
from repro.errors import ConfigurationError
from repro.rng import RngLike, ensure_rng
from repro.store.social_store import SocialStore
from repro.store.stats import CallStats

__all__ = ["PageRankStore", "FetchResult"]

FETCH_FULL = "full"
FETCH_SAMPLED_EDGE = "sampled_edge"


@dataclass
class FetchResult:
    """What one fetch returns.

    ``segments`` are the node's stored walk segments (node lists, copies —
    callers may consume them destructively).  ``neighbors`` is the full
    out-adjacency in ``full`` mode; in ``sampled_edge`` mode it holds the
    single sampled out-neighbour (or is empty for dangling nodes).
    ``in_neighbors`` is populated only by SALSA-mode stores (backward steps
    need the reverse adjacency).  ``parity_offsets`` mirrors ``segments``
    for side-tracked stores (0 = forward-start, 1 = backward-start).
    """

    node: int
    segments: list[list[int]] = field(default_factory=list)
    neighbors: list[int] = field(default_factory=list)
    out_degree: int = 0
    in_neighbors: list[int] = field(default_factory=list)
    parity_offsets: list[int] = field(default_factory=list)


class PageRankStore:
    """Walk-segment database with fetch accounting."""

    def __init__(
        self,
        social_store: SocialStore,
        *,
        walk_store: Optional[WalkIndex] = None,
        track_sides: bool = False,
        fetch_mode: str = FETCH_FULL,
        include_in_neighbors: bool = False,
        stats: Optional[CallStats] = None,
        registry=None,
    ) -> None:
        if fetch_mode not in (FETCH_FULL, FETCH_SAMPLED_EDGE):
            raise ConfigurationError(
                f"fetch_mode must be 'full' or 'sampled_edge', got {fetch_mode!r}"
            )
        self.social_store = social_store
        #: Any WalkIndex implementation; the incremental engines install a
        #: ColumnarWalkStore here by default (see core/columnar.py).
        self.walks: WalkIndex = (
            walk_store
            if walk_store is not None
            else WalkStore(social_store.num_nodes, track_sides=track_sides)
        )
        self.fetch_mode = fetch_mode
        self.include_in_neighbors = include_in_neighbors
        #: ``registry`` mirrors the fetch/repair counters into a shared
        #: :class:`~repro.obs.MetricsRegistry` under ``store="pagerank"``
        #: (ignored when an explicit ``stats`` object is supplied).
        self.stats = (
            stats
            if stats is not None
            else CallStats(registry=registry, store="pagerank")
        )

    # ------------------------------------------------------------------
    # Counters (the paper's W(v) and d(v))
    # ------------------------------------------------------------------

    def walk_count(self, node: int) -> int:
        """``W(v)``: distinct stored segments visiting ``node``."""
        return self.walks.distinct_segment_count(node)

    def visit_count(self, node: int) -> int:
        """``X(v)``: total stored visits to ``node``."""
        return self.walks.visit_count(node)

    def out_degree(self, node: int) -> int:
        """``d(v)``: current out-degree, read through the social store."""
        return self.social_store.out_degree(node)

    def activation_probability(self, node: int) -> float:
        """``1 − (1 − 1/d(v))^{W(v)}`` — the §2.2 short-circuit.

        With probability equal to this value an arriving edge out of
        ``node`` requires calling into the PageRank Store at all; otherwise
        the store is provably untouched and the edge costs only the social
        store write.  Uses the *post-insertion* degree ``d(v)``.
        """
        degree = self.out_degree(node)
        if degree <= 0:
            return 1.0  # newly un-dangled node: pending steps must resume
        walk_count = self.walk_count(node)
        if walk_count == 0:
            return 0.0
        return 1.0 - (1.0 - 1.0 / degree) ** walk_count

    # ------------------------------------------------------------------
    # Fetch (the §3 query primitive)
    # ------------------------------------------------------------------

    def fetch(self, node: int, rng: RngLike = None) -> FetchResult:
        """Return ``node``'s stored segments plus adjacency; counted.

        This is the expensive distributed call whose count Theorem 8
        bounds.  In ``sampled_edge`` mode (Remark 1) only one uniformly
        sampled out-edge is returned instead of the full adjacency.
        """
        self.stats.record("fetch")
        segment_ids = self.walks.segments_starting_at(node)
        segments = [self.walks.segment_nodes(sid) for sid in segment_ids]
        parity_offsets = [self.walks.parity_of(sid) for sid in segment_ids]
        if self.fetch_mode == FETCH_FULL:
            neighbors = list(self.social_store.out_neighbors(node))
            degree = len(neighbors)
        else:
            degree = self.social_store.out_degree(node)
            if degree:
                neighbors = [self.social_store.random_out_neighbor(node, ensure_rng(rng))]
            else:
                neighbors = []
        in_neighbors: list[int] = []
        if self.include_in_neighbors:
            in_neighbors = list(self.social_store.in_neighbors(node))
        return FetchResult(
            node=node,
            segments=segments,
            neighbors=neighbors,
            out_degree=degree,
            in_neighbors=in_neighbors,
            parity_offsets=parity_offsets,
        )

    @property
    def fetch_count(self) -> int:
        return self.stats.count("fetch")

    def reset_fetch_count(self) -> None:
        self.stats.reset()

    # ------------------------------------------------------------------
    # Segment administration (used by the incremental engines)
    # ------------------------------------------------------------------

    def add_segment(self, segment: WalkSegment) -> int:
        return self.walks.add_segment(segment)

    def record_batch(self, report) -> None:
        """Bill one batched maintenance pass to the store's counters.

        ``report`` is a :class:`repro.core.incremental.BatchUpdateReport`
        (duck-typed).  One ``apply_batch`` marker plus the volume counters
        the deployed two-store layout would see: how many stored segments
        were rewritten and how many walk steps were written back.  Reading
        ``stats.delta_since`` around an ingestion slice therefore gives the
        per-batch PageRank-Store traffic directly.
        """
        self.stats.record("apply_batch")
        self.stats.record("segments_rewritten", report.segments_rerouted)
        self.stats.record("steps_resimulated", report.steps_resimulated)
        self.stats.record("steps_discarded", report.steps_discarded)
        self.stats.record("segments_initialized", report.segments_initialized)

    def segments_starting_at(self, node: int) -> list[int]:
        return self.walks.segments_starting_at(node)

    def __repr__(self) -> str:
        return (
            f"PageRankStore(segments={self.walks.num_segments}, "
            f"visits={self.walks.total_visits}, fetches={self.fetch_count})"
        )
