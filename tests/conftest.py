"""Shared fixtures.

All stochastic tests run on fixed seeds: results are deterministic, and the
statistical tolerances were calibrated once against those seeds.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    directed_cycle,
    directed_erdos_renyi,
    directed_preferential_attachment,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph() -> DynamicDiGraph:
    """4 nodes, hand-wired, includes a dangling node (3)."""
    graph = DynamicDiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)  # 3 has no out-edges: dangling
    return graph


@pytest.fixture
def cycle_graph() -> DynamicDiGraph:
    return directed_cycle(30)


@pytest.fixture
def random_graph() -> DynamicDiGraph:
    return directed_erdos_renyi(60, 300, rng=7)


@pytest.fixture
def pa_graph() -> DynamicDiGraph:
    return directed_preferential_attachment(300, edges_per_node=4, rng=11)


# ----------------------------------------------------------------------
# Prometheus text-format (0.0.4) checker
# ----------------------------------------------------------------------

_PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # more labels
    r" (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$"
)


def assert_prometheus_text(exposition: str) -> None:
    """Structural checker for the Prometheus text exposition format.

    Every metric family must carry # HELP and # TYPE headers before its
    samples; every sample line must parse; histogram families must end
    each series with an ``le="+Inf"`` bucket whose value equals the
    series' ``_count``, with non-decreasing (cumulative) buckets first.
    """
    assert exposition.endswith("\n"), "exposition must end with a newline"
    typed: dict[str, str] = {}
    helped: set[str] = set()
    current_family = None
    # histogram bookkeeping, keyed "family|labels-without-le"
    buckets: dict[str, list[float]] = {}
    inf_buckets: dict[str, float] = {}
    counts: dict[str, float] = {}

    def series_key(family: str, line: str, drop_le: bool) -> str:
        sample = line.rsplit(" ", 1)[0]
        labels = ""
        if "{" in sample:
            labels = sample[sample.index("{") + 1 : sample.rindex("}")]
        parts = [p for p in labels.split(",") if p]
        if drop_le:
            parts = [p for p in parts if not p.startswith("le=")]
        return family + "|" + ",".join(sorted(parts))

    for line in exposition.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            typed[name] = kind
            current_family = name
            continue
        assert not line.startswith("#"), f"unknown comment line: {line!r}"
        assert _PROM_SAMPLE_RE.match(line), f"unparseable sample: {line!r}"
        sample_name = re.split(r"[{ ]", line, maxsplit=1)[0]
        value = float(line.rsplit(" ", 1)[1])
        family = current_family
        assert family is not None and sample_name.startswith(family), (
            f"sample {sample_name!r} outside its # TYPE family"
        )
        assert family in helped, f"family {family!r} missing # HELP"
        if typed[family] == "histogram":
            suffix = sample_name[len(family) :]
            assert suffix in ("_bucket", "_sum", "_count"), (
                f"unexpected histogram sample {sample_name!r}"
            )
            if suffix == "_bucket":
                key = series_key(family, line, drop_le=True)
                buckets.setdefault(key, []).append(value)
                if 'le="+Inf"' in line:
                    inf_buckets[key] = value
            elif suffix == "_count":
                counts[series_key(family, line, drop_le=False)] = value
        elif typed[family] == "counter":
            assert value >= 0, f"negative counter sample: {line!r}"

    for key, values in buckets.items():
        assert values == sorted(values), f"non-cumulative buckets: {key}"
        assert key in inf_buckets, f"missing le=+Inf bucket: {key}"
        assert key in counts, f"missing _count for histogram series: {key}"
        assert counts[key] == inf_buckets[key], (
            f"_count != +Inf bucket for {key}"
        )


@pytest.fixture
def prometheus_checker():
    return assert_prometheus_text
