"""COSINE link prediction (Appendix A).

The hub score of ``v`` is the cosine similarity between the out-neighbour
sets of the seed ``u`` and of ``v`` (as 0/1 vectors):

    h_v = |N(u) ∩ N(v)| / √(|N(u)|·|N(v)|)

and the authority score follows the HITS aggregation

    a_x = Σ_{v: (v,x)∈E} h_v.

Only nodes sharing at least one out-neighbour with the seed can have a
non-zero hub score, so the computation walks the two-hop neighbourhood
instead of all ``n`` nodes.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph

__all__ = ["cosine_hub_scores", "cosine_scores"]


def cosine_hub_scores(graph: DynamicDiGraph, seed: int) -> dict[int, float]:
    """Sparse ``h_v`` for all ``v`` with ``h_v > 0`` (seed excluded)."""
    if not graph.has_node(seed):
        raise ConfigurationError(f"seed {seed} not in graph")
    seed_neighbors = set(graph.out_view(seed))
    if not seed_neighbors:
        return {}
    overlap: Counter[int] = Counter()
    for friend in seed_neighbors:
        for candidate in graph.in_view(friend):
            if candidate != seed:
                overlap[candidate] += 1
    seed_degree = len(seed_neighbors)
    return {
        candidate: shared / math.sqrt(seed_degree * graph.out_degree(candidate))
        for candidate, shared in overlap.items()
    }


def cosine_scores(graph: DynamicDiGraph, seed: int) -> np.ndarray:
    """Dense authority vector ``a_x = Σ_{v→x} h_v`` for ranking."""
    hubs = cosine_hub_scores(graph, seed)
    authority = np.zeros(graph.num_nodes, dtype=np.float64)
    for hub_node, hub_score in hubs.items():
        for target in graph.out_view(hub_node):
            authority[target] += hub_score
    return authority
