"""E-THM1: Monte Carlo concentration benchmark (Theorem 1).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workload,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os

from repro.experiments.exp_concentration import run_thm1

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {"num_nodes": 300, "num_edges": 3_600, "walk_counts": (1, 5, 20), "rng": 42}
    if FAST_MODE
    else {
        "num_nodes": 1000,
        "num_edges": 12_000,
        "walk_counts": (1, 2, 5, 10, 20),
        "rng": 42,
    }
)


def test_e_thm1(benchmark, once):
    result = once(benchmark, run_thm1, **PARAMS)
    rows = {row["R"]: row for row in result.rows}
    if not FAST_MODE:
        # error decays with R (allowing ~sqrt noise): R=20 beats R=1 by
        # >= 2.5x
        assert rows[20]["L1 error"] < rows[1]["L1 error"] / 2.5
        # "even R = 1 gives provably good results": top-100 mostly recovered
        assert rows[1]["top-100 overlap"] > 0.5
        assert rows[20]["top-100 overlap"] > 0.8
    print()
    print(result.render())
