"""Seeded fault schedules: rules, plans, and the standard kill schedule.

A :class:`FaultRule` names *where* (``site``), *what* (``action``) and
*when* (``after`` matching events, optionally scoped to one ``worker``
and one process ``incarnation``).  A :class:`FaultPlan` holds an ordered
tuple of rules plus per-rule match counters; :meth:`FaultPlan.fire` is
the single hook components call.

Sites in use across the repository (a component ignores sites it does
not own, so one plan can be threaded everywhere):

==================  =============================================  ==============
site                hook point                                     actions
==================  =============================================  ==============
``worker.batch``    worker loop, before answering a batch          kill/delay/drop
``worker.epoch``    worker loop, before an epoch swap              kill/delay/drop
``worker.heartbeat``  worker loop, before emitting a heartbeat     drop
``worker.clock``    worker build, TTL clock construction           skew
``frontend.dispatch``  coordinator, before enqueueing a batch      delay/drop
``publisher.publish``  ArenaPublisher, before writing a snapshot   partial
``wal.append``      WriteAheadLog, before writing a record         torn
==================  =============================================  ==============

Counters are **per process**: a plan pickled into a spawned worker starts
its counts at zero, and respawned workers get a fresh copy too.  Rules
therefore scope to a process *incarnation* (0 = the first spawn) so a
"kill after K batches" rule does not re-fire forever in every respawn —
exactly the semantics a supervision test wants.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FaultRule",
    "FaultPlan",
    "kill_each_worker_plan",
    "KILL",
    "DELAY",
    "DROP",
    "TORN",
    "PARTIAL",
    "SKEW",
]

#: Fault actions.  Interpretation belongs to the hook site: ``kill`` is
#: ``os._exit`` in a worker, ``drop`` swallows the message/heartbeat,
#: ``delay`` sleeps, ``torn`` truncates a WAL record mid-write, ``partial``
#: abandons a snapshot directory half-written, ``skew`` offsets a clock.
KILL = "kill"
DELAY = "delay"
DROP = "drop"
TORN = "torn"
PARTIAL = "partial"
SKEW = "skew"

_ACTIONS = frozenset({KILL, DELAY, DROP, TORN, PARTIAL, SKEW})


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``action`` at ``site`` after ``after`` events.

    ``after`` counts *matching* events before the rule arms: ``after=0``
    fires on the first match, ``after=3`` on the fourth.  ``worker`` and
    ``incarnation`` scope matching (``None`` matches any); ``repeat=True``
    keeps firing on every later match instead of once.  ``seconds`` is the
    magnitude for ``delay``/``skew``; ``exit_code`` the status for
    ``kill``.
    """

    site: str
    action: str
    after: int = 0
    worker: Optional[int] = None
    incarnation: Optional[int] = 0
    seconds: float = 0.0
    exit_code: int = 17
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {sorted(_ACTIONS)})"
            )
        if self.after < 0:
            raise ConfigurationError(f"after must be >= 0, got {self.after}")
        if self.seconds < 0:
            raise ConfigurationError(
                f"seconds must be >= 0, got {self.seconds}"
            )


class FaultPlan:
    """A deterministic schedule of :class:`FaultRule` entries.

    Thread-safe (the frontend fires from dispatcher and supervisor
    threads) and picklable (the plan crosses the spawn boundary inside
    ``WorkerConfig``); pickling carries the rules and seed but resets the
    match counters, so every process counts its own events from zero.
    """

    def __init__(
        self, rules: Sequence[FaultRule] = (), *, seed: int = 0
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._seen = [0] * len(self.rules)
        self._fired = [False] * len(self.rules)

    # -- pickling: rules travel, counters restart per process ----------
    def __getstate__(self) -> dict:
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["rules"], seed=state["seed"])

    def _matches(
        self,
        rule: FaultRule,
        site: str,
        worker: Optional[int],
        incarnation: int,
    ) -> bool:
        if rule.site != site:
            return False
        if rule.worker is not None and worker != rule.worker:
            return False
        if rule.incarnation is not None and incarnation != rule.incarnation:
            return False
        return True

    def fire(
        self,
        site: str,
        *,
        worker: Optional[int] = None,
        incarnation: int = 0,
    ) -> Optional[FaultRule]:
        """Record one event at ``site``; return the rule to apply, if any.

        Every matching rule's counter advances on every call (so two
        rules at one site each see the full event stream); the first rule
        whose threshold is crossed — and that has not already fired,
        unless ``repeat`` — is returned.  ``None`` means proceed normally.
        """
        with self._lock:
            chosen: Optional[FaultRule] = None
            for index, rule in enumerate(self.rules):
                if not self._matches(rule, site, worker, incarnation):
                    continue
                self._seen[index] += 1
                if chosen is not None:
                    continue
                if self._fired[index] and not rule.repeat:
                    continue
                if self._seen[index] > rule.after:
                    self._fired[index] = True
                    chosen = rule
            return chosen

    def clock_skew(
        self, *, worker: Optional[int] = None, incarnation: int = 0
    ) -> float:
        """Total injected clock offset for ``worker`` (``skew`` rules).

        Skew is a build-time property, not an event: it is read once when
        the worker constructs its TTL clock, without advancing counters.
        """
        return sum(
            rule.seconds
            for rule in self.rules
            if rule.action == SKEW
            and self._matches(rule, rule.site, worker, incarnation)
        )

    @property
    def fired_count(self) -> int:
        """How many rules have fired in *this* process (for assertions)."""
        with self._lock:
            return sum(self._fired)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"fired={self.fired_count})"
        )


def kill_each_worker_plan(
    seed: int,
    num_workers: int,
    *,
    lo: int = 1,
    hi: int = 6,
    exit_code: int = 17,
) -> FaultPlan:
    """The standard chaos schedule: kill every worker once, mid-drain.

    Each worker ``w`` gets one ``worker.batch``/``kill`` rule firing after
    a seeded offset drawn uniformly from ``[lo, hi)`` — different workers
    die at different points of the request stream, all reproducible from
    ``seed`` (printed by the chaos suite on failure).
    """
    if num_workers <= 0:
        raise ConfigurationError(
            f"num_workers must be positive, got {num_workers}"
        )
    if not 0 <= lo < hi:
        raise ConfigurationError(f"need 0 <= lo < hi, got [{lo}, {hi})")
    rng = np.random.default_rng(seed)
    rules = [
        FaultRule(
            site="worker.batch",
            action=KILL,
            after=int(rng.integers(lo, hi)),
            worker=worker,
            incarnation=0,
            exit_code=exit_code,
        )
        for worker in range(num_workers)
    ]
    return FaultPlan(rules, seed=seed)
