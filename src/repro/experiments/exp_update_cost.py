"""E-THM4 / E-PROP5 / E-DIR / E-ADV / E-THM6: maintenance cost experiments.

These validate the paper's §2 cost claims with *measured* work (walk steps
touched per mutation, as reported by the engines) against the closed
forms in :mod:`repro.core.theory`:

* Theorem 4: per-arrival work decays like ``nR/(t·ε²)``; total work over m
  random-order arrivals is ≤ ``(nR/ε²)·H_m`` — and both naive strategies
  (power iteration per arrival, Monte Carlo rebuild per arrival) are
  orders of magnitude worse.
* Proposition 5: a random deletion from an m-edge graph costs ≈ ``nR/(mε²)``.
* Dirichlet arrivals: total ≈ ``(nR/ε²)·ln((m+n)/n)``.
* Example 1: an adversarial arrival order breaks all of the above — the
  killer edge alone costs Ω(n).
* Theorem 6: SALSA maintenance tracks PageRank's with the ×16 constant
  (2R walks × length 2/ε × both endpoints).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.asciiplot import ascii_plot
from repro.baselines.power_iteration import exact_pagerank
from repro.core import theory
from repro.core.incremental import IncrementalPageRank
from repro.core.salsa import IncrementalSALSA
from repro.experiments.common import ExperimentResult, register
from repro.graph.arrival import (
    DirichletArrival,
    RandomPermutationArrival,
    apply_events,
    slice_events,
)
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import example1_adversarial_gadget
from repro.rng import ensure_rng, spawn
from repro.workloads.twitter_like import twitter_like_graph

__all__ = [
    "run_thm4",
    "run_prop5",
    "run_dirichlet",
    "run_adversarial",
    "run_thm6",
    "run_batch_ingest",
]


def _feed_stream(engine, events):
    """Replay events; returns per-arrival resimulated steps and reroutes.

    Resimulated steps are the paper's work unit: each affected segment is
    repaired by re-walking, at expected cost 1/ε (Theorem 4's accounting).
    Truncation/discard bookkeeping is cheap counter updates and is tracked
    separately by the engines.
    """
    work = np.zeros(len(events), dtype=np.int64)
    rerouted = np.zeros(len(events), dtype=np.int64)
    for index, event in enumerate(events):
        report = engine.apply(event)
        work[index] = report.steps_resimulated
        rerouted[index] = report.segments_rerouted
    return work, rerouted


def _log_buckets(length: int, count: int = 10) -> list[tuple[int, int]]:
    edges = np.unique(
        np.geomspace(1, length, count + 1).astype(int)
    )
    return [(int(a), int(b)) for a, b in zip(edges, edges[1:])]


@register("E-THM4")
def run_thm4(
    num_nodes: int = 2000,
    num_edges: int = 24_000,
    walks_per_node: int = 5,
    reset_probability: float = 0.3,
    rng=42,
) -> ExperimentResult:
    """Theorem 4: measured incremental work under random-order arrivals."""
    generator = ensure_rng(rng)
    graph_rng, perm_rng, engine_rng = spawn(generator, 3)
    final_graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    m = final_graph.num_edges
    events = list(RandomPermutationArrival.of_graph(final_graph, rng=perm_rng))

    engine = IncrementalPageRank(
        reset_probability=reset_probability,
        walks_per_node=walks_per_node,
        rng=engine_rng,
    )
    for _ in range(num_nodes):
        engine.add_node()
    work, rerouted = _feed_stream(engine, events)

    rows = []
    for low, high in _log_buckets(m):
        bucket = slice(low - 1, high)
        measured = float(work[bucket].mean())
        bound = float(
            np.mean(
                [
                    theory.thm4_update_work_at(
                        num_nodes, walks_per_node, reset_probability, t
                    )
                    for t in range(low, high + 1)
                ]
            )
        )
        rows.append(
            {
                "arrival t": f"{low}-{high}",
                "measured mean work": measured,
                "thm4 bound nR/(t eps^2)": bound,
                "mean segments rerouted": float(rerouted[bucket].mean()),
            }
        )

    total_measured = int(work.sum())
    total_bound = theory.thm4_total_update_work(
        num_nodes, walks_per_node, reset_probability, m
    )
    init_work = theory.mc_initialization_work(
        num_nodes, walks_per_node, reset_probability
    )
    naive_pi = theory.naive_power_iteration_total_work(m, reset_probability)
    naive_mc = theory.naive_monte_carlo_total_work(num_nodes, m, reset_probability)
    rows.extend(
        [
            {
                "arrival t": "TOTAL measured",
                "measured mean work": total_measured,
                "thm4 bound nR/(t eps^2)": total_bound,
                "mean segments rerouted": int(rerouted.sum()),
            },
            {
                "arrival t": "naive power-iteration total (analytic)",
                "measured mean work": naive_pi,
                "thm4 bound nR/(t eps^2)": "-",
                "mean segments rerouted": "-",
            },
            {
                "arrival t": "naive MC-rebuild total (analytic)",
                "measured mean work": naive_mc,
                "thm4 bound nR/(t eps^2)": "-",
                "mean segments rerouted": "-",
            },
        ]
    )

    midpoints = [int(np.sqrt(low * high)) for low, high in _log_buckets(m)]
    figure = ascii_plot(
        {
            "measured": (
                midpoints,
                [row["measured mean work"] for row in rows[: len(midpoints)]],
            ),
            "bound": (
                midpoints,
                [
                    row["thm4 bound nR/(t eps^2)"]
                    for row in rows[: len(midpoints)]
                ],
            ),
        },
        log_x=True,
        log_y=True,
        title="Theorem 4: per-arrival update work decays ~1/t",
    )

    result = ExperimentResult(
        experiment_id="E-THM4",
        title="Theorem 4: total incremental work ~ (nR/eps^2) ln m",
        params={
            "n": num_nodes,
            "m": m,
            "R": walks_per_node,
            "eps": reset_probability,
        },
        rows=rows,
        figures={"thm4": figure},
    )
    result.notes.append(
        f"Total measured work {total_measured} vs bound {total_bound:.0f} "
        f"(x{total_bound / max(total_measured, 1):.1f} headroom); "
        f"initialization alone costs {init_work:.0f} — maintenance is only "
        f"x{total_measured / init_work:.1f} that, the paper's 'logarithmic "
        "factor' claim."
    )
    return result


@register("E-PROP5")
def run_prop5(
    num_nodes: int = 2000,
    num_edges: int = 24_000,
    deletions: int = 2000,
    walks_per_node: int = 5,
    reset_probability: float = 0.3,
    rng=42,
) -> ExperimentResult:
    """Proposition 5: cost of deleting random edges."""
    generator = ensure_rng(rng)
    graph_rng, engine_rng, pick_rng = spawn(generator, 3)
    graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    m = graph.num_edges
    engine = IncrementalPageRank.from_graph(
        graph,
        reset_probability=reset_probability,
        walks_per_node=walks_per_node,
        rng=engine_rng,
    )
    resimulated = []
    touched = []
    segments = []
    for _ in range(deletions):
        edge = engine.graph.random_edge(pick_rng)
        report = engine.remove_edge(*edge)
        resimulated.append(report.steps_resimulated)
        touched.append(report.work)
        segments.append(report.segments_rerouted)
    measured = float(np.mean(resimulated))
    bound = theory.prop5_deletion_work(
        num_nodes, walks_per_node, reset_probability, m
    )
    result = ExperimentResult(
        experiment_id="E-PROP5",
        title="Proposition 5: random deletion cost ~ nR/(m eps^2)",
        params={
            "n": num_nodes,
            "m": m,
            "R": walks_per_node,
            "eps": reset_probability,
            "deletions": deletions,
        },
        rows=[
            {
                "quantity": "mean resimulated steps per deletion",
                "measured": measured,
                "prop5 bound": bound,
                "measured/bound": measured / bound,
            },
            {
                "quantity": "mean segments repaired per deletion",
                "measured": float(np.mean(segments)),
                "prop5 bound": bound * reset_probability,
                "measured/bound": float(np.mean(segments))
                / (bound * reset_probability),
            },
            {
                "quantity": "mean touched steps (incl. discards)",
                "measured": float(np.mean(touched)),
                "prop5 bound": "-",
                "measured/bound": "-",
            },
        ],
    )
    result.notes.append(
        "Prop-5's bound is E[segments]·(1/eps); the measured/bound ratio "
        "should be ≈ 1 (the bound is tight under uniform edge deletion)."
    )
    return result


@register("E-DIR")
def run_dirichlet(
    num_nodes: int = 2000,
    num_edges: int = 24_000,
    walks_per_node: int = 5,
    reset_probability: float = 0.3,
    rng=42,
) -> ExperimentResult:
    """§2.2 remark: Dirichlet-model arrivals cost ~ (nR/eps^2) ln((m+n)/n)."""
    generator = ensure_rng(rng)
    stream_rng, engine_rng = spawn(generator, 2)
    events = list(
        DirichletArrival(num_nodes, num_edges, rng=stream_rng)
    )
    engine = IncrementalPageRank(
        reset_probability=reset_probability,
        walks_per_node=walks_per_node,
        rng=engine_rng,
    )
    for _ in range(num_nodes):
        engine.add_node()
    work, _ = _feed_stream(engine, events)
    measured = int(work.sum())
    bound = theory.dirichlet_total_update_work(
        num_nodes, walks_per_node, reset_probability, len(events)
    )
    permutation_bound = theory.thm4_total_update_work(
        num_nodes, walks_per_node, reset_probability, len(events)
    )
    result = ExperimentResult(
        experiment_id="E-DIR",
        title="Dirichlet arrivals: total work ~ (nR/eps^2) ln((m+n)/n)",
        params={
            "n": num_nodes,
            "m": len(events),
            "R": walks_per_node,
            "eps": reset_probability,
        },
        rows=[
            {
                "quantity": "total measured work",
                "value": measured,
            },
            {"quantity": "dirichlet bound", "value": bound},
            {
                "quantity": "random-permutation bound (for scale)",
                "value": permutation_bound,
            },
        ],
    )
    result.notes.append(
        "The Dirichlet bound is smaller than the permutation bound because "
        "ln((m+n)/n) < ln m; measured work must sit below both."
    )
    return result


@register("E-ADV")
def run_adversarial(
    sizes: tuple[int, ...] = (20, 40, 80),
    walks_per_node: int = 5,
    reset_probability: float = 0.2,
    repetitions: int = 5,
    rng=42,
) -> ExperimentResult:
    """Example 1: the adversarial order forces Ω(n) updates at one arrival."""
    generator = ensure_rng(rng)
    rows = []
    for size in sizes:
        killer_costs = []
        random_costs = []
        for rep in range(repetitions):
            gadget, killer, deferred = example1_adversarial_gadget(size)
            # capture the full edge set before the engine mutates the gadget
            full_edges = gadget.edge_list() + [killer] + deferred
            engine = IncrementalPageRank.from_graph(
                gadget,
                reset_probability=reset_probability,
                walks_per_node=walks_per_node,
                rng=generator,
            )
            killer_costs.append(engine.add_edge(*killer).segments_rerouted)
            # control: the same graph built in random order — mean cost of
            # the final arrival position (Theorem 4 regime)
            control = IncrementalPageRank(
                reset_probability=reset_probability,
                walks_per_node=walks_per_node,
                rng=generator,
            )
            for _ in range(gadget.num_nodes):
                control.add_node()
            events = list(
                RandomPermutationArrival(
                    full_edges, num_nodes=gadget.num_nodes, rng=generator
                )
            )
            last_report = None
            for event in events:
                last_report = control.apply(event)
            random_costs.append(last_report.segments_rerouted)
        n = 3 * size + 1
        rows.append(
            {
                "gadget N": size,
                "n": n,
                "killer-edge reroutes": float(np.mean(killer_costs)),
                "reroutes / nR": float(
                    np.mean(killer_costs) / (n * walks_per_node)
                ),
                "random-order last arrival": float(np.mean(random_costs)),
            }
        )
    result = ExperimentResult(
        experiment_id="E-ADV",
        title="Example 1: adversarial arrival costs Omega(n); random order does not",
        params={
            "R": walks_per_node,
            "eps": reset_probability,
            "repetitions": repetitions,
        },
        rows=rows,
    )
    result.notes.append(
        "'reroutes / nR' stays roughly constant as n grows — the Ω(n) "
        "claim — while the random-order control stays near zero."
    )
    return result


@register("E-BATCH")
def run_batch_ingest(
    num_nodes: int = 2000,
    num_edges: int = 24_000,
    prebuild_fraction: float = 0.2,
    batch_sizes: tuple[int, ...] = (100, 1000, 0),
    walks_per_node: int = 5,
    reset_probability: float = 0.3,
    rng=42,
) -> ExperimentResult:
    """Batched vs sequential ingestion of the same arrival slice.

    A prefix of the stream is prebuilt (identically for every mode, same
    engine seed ⇒ identical initial walk stores); the remaining slice is
    then ingested (a) one edge at a time through :meth:`apply` and (b)
    through :meth:`apply_batch` at several batch sizes (``0`` = the whole
    slice as one batch).  Rows report wall-clock, speedup, touched-step
    work, and L1 error vs an exact solve of the final graph — the batch
    path must win on time without losing accuracy.
    """
    generator = ensure_rng(rng)
    graph_rng, perm_rng, engine_seed = spawn(generator, 3)
    final_graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    events = list(RandomPermutationArrival.of_graph(final_graph, rng=perm_rng))
    cut = int(len(events) * prebuild_fraction)
    prefix_graph = DynamicDiGraph(num_nodes, allow_self_loops=False)
    apply_events(prefix_graph, events[:cut])
    window = events[cut:]
    exact = exact_pagerank(final_graph, reset_probability=reset_probability)

    def fresh_engine() -> IncrementalPageRank:
        # same seed every time: all modes start from identical walk stores
        return IncrementalPageRank.from_graph(
            prefix_graph.copy(),
            reset_probability=reset_probability,
            walks_per_node=walks_per_node,
            rng=np.random.default_rng(12345),
        )

    rows = []
    engine = fresh_engine()
    started = time.perf_counter()
    for event in window:
        engine.apply(event)
    sequential_seconds = time.perf_counter() - started
    rows.append(
        {
            "ingestion mode": "sequential (per edge)",
            "wall seconds": sequential_seconds,
            "speedup": 1.0,
            "touched steps": engine.total_work,
            "L1 error vs exact": float(
                np.abs(engine.pagerank() - exact).sum()
            ),
        }
    )

    for batch_size in batch_sizes:
        effective = batch_size if batch_size > 0 else max(len(window), 1)
        engine = fresh_engine()
        started = time.perf_counter()
        for chunk in slice_events(window, effective):
            engine.apply_batch(chunk)
        seconds = time.perf_counter() - started
        engine.walks.check_invariants()
        rows.append(
            {
                "ingestion mode": f"batched (size {effective})",
                "wall seconds": seconds,
                "speedup": sequential_seconds / seconds,
                "touched steps": engine.total_work,
                "L1 error vs exact": float(
                    np.abs(engine.pagerank() - exact).sum()
                ),
            }
        )

    figure = ascii_plot(
        {
            "speedup": (
                [
                    batch_size if batch_size > 0 else len(window)
                    for batch_size in batch_sizes
                ],
                [row["speedup"] for row in rows[1:]],
            )
        },
        log_x=True,
        title="E-BATCH: speedup over sequential vs batch size",
    )

    result = ExperimentResult(
        experiment_id="E-BATCH",
        title="Batched vs sequential ingestion of one arrival slice",
        params={
            "n": num_nodes,
            "m": len(events),
            "slice": len(window),
            "R": walks_per_node,
            "eps": reset_probability,
        },
        rows=rows,
        figures={"batch_speedup": figure},
    )
    result.notes.append(
        "Batched ingestion repairs against the post-batch graph only, so "
        "it also does *less* walk work than the sequential path (segments "
        "touched by several arrivals are repaired once); both paths leave "
        "segments distributed as fresh reset walks on the final graph."
    )
    return result


@register("E-THM6")
def run_thm6(
    num_nodes: int = 800,
    num_edges: int = 8000,
    walks_per_node: int = 3,
    reset_probability: float = 0.3,
    rng=42,
) -> ExperimentResult:
    """Theorem 6: SALSA maintenance cost vs PageRank's (the x16 factor)."""
    generator = ensure_rng(rng)
    graph_rng, perm_rng, pr_rng, salsa_rng = spawn(generator, 4)
    final_graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    m = final_graph.num_edges
    events = list(RandomPermutationArrival.of_graph(final_graph, rng=perm_rng))

    pagerank_engine = IncrementalPageRank(
        reset_probability=reset_probability,
        walks_per_node=walks_per_node,
        rng=pr_rng,
    )
    salsa_engine = IncrementalSALSA(
        reset_probability=reset_probability,
        walks_per_node=walks_per_node,
        rng=salsa_rng,
    )
    for _ in range(num_nodes):
        pagerank_engine.add_node()
        salsa_engine.add_node()
    pr_work, _ = _feed_stream(pagerank_engine, events)
    salsa_work, _ = _feed_stream(salsa_engine, events)

    measured_ratio = salsa_work.sum() / max(pr_work.sum(), 1)
    bound = theory.thm6_salsa_total_update_work(
        num_nodes, walks_per_node, reset_probability, m
    )
    result = ExperimentResult(
        experiment_id="E-THM6",
        title="Theorem 6: SALSA update cost vs PageRank",
        params={
            "n": num_nodes,
            "m": m,
            "R": walks_per_node,
            "eps": reset_probability,
        },
        rows=[
            {"quantity": "PageRank total work", "value": int(pr_work.sum())},
            {"quantity": "SALSA total work", "value": int(salsa_work.sum())},
            {"quantity": "measured SALSA/PageRank ratio", "value": float(measured_ratio)},
            {"quantity": "theorem-6 constant", "value": 16.0},
            {"quantity": "thm6 total bound", "value": bound},
            {
                "quantity": "SALSA within bound",
                "value": bool(salsa_work.sum() <= bound),
            },
        ],
    )
    result.notes.append(
        "The x16 is an upper-bound constant (2R walks x (2/eps)^... x both "
        "endpoints); measured ratios land below it."
    )
    return result
