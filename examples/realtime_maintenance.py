#!/usr/bin/env python
"""Real-time reputation maintenance: the Theorem-4 economics, live.

Feeds a follow stream edge by edge into (a) the incremental engine and
(b) a naive rebuild-per-arrival Monte Carlo baseline (on a subsampled
prefix — running it for every arrival is the point of its being
infeasible), then reports:

* per-arrival maintenance cost as the network grows (decaying, per Thm 4);
* cumulative cost vs the naive strategies (measured + analytic);
* estimate quality against an exact solve at several checkpoints.

Run:  python examples/realtime_maintenance.py [--nodes 1500]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines.monte_carlo_static import NaiveMonteCarloRebuild
from repro.baselines.power_iteration import exact_pagerank
from repro.core import theory
from repro.core.incremental import IncrementalPageRank
from repro.graph.arrival import RandomPermutationArrival
from repro.workloads.twitter_like import twitter_like_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1500)
    parser.add_argument("--edges", type=int, default=18_000)
    parser.add_argument("--walks", type=int, default=5)
    parser.add_argument("--eps", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    final_graph = twitter_like_graph(args.nodes, args.edges, rng=args.seed)
    events = list(RandomPermutationArrival.of_graph(final_graph, rng=args.seed))
    m = len(events)

    engine = IncrementalPageRank(
        reset_probability=args.eps, walks_per_node=args.walks, rng=args.seed
    )
    for _ in range(args.nodes):
        engine.add_node()

    checkpoints = {m // 10, m // 3, m}
    window_cost = 0
    window_start = 1
    print(f"feeding {m} arrivals (n={args.nodes}, R={args.walks}, eps={args.eps})\n")
    print("   arrivals | mean cost/arrival | thm4 bound/arrival")
    for t, event in enumerate(events, start=1):
        window_cost += engine.apply(event).steps_resimulated
        if t in checkpoints or t == m // 30:
            bound = np.mean(
                [
                    theory.thm4_update_work_at(args.nodes, args.walks, args.eps, i)
                    for i in range(window_start, t + 1)
                ]
            )
            print(
                f"  {window_start:>6}-{t:<6}| {window_cost / (t - window_start + 1):>17.2f} "
                f"| {bound:>18.1f}"
            )
            window_cost, window_start = 0, t + 1

    total = engine.total_steps_resimulated
    bound = theory.thm4_total_update_work(args.nodes, args.walks, args.eps, m)
    naive_pi = theory.naive_power_iteration_total_work(m, args.eps)
    naive_mc = theory.naive_monte_carlo_total_work(args.nodes, m, args.eps)
    print(f"\ntotal maintenance:        {total:>14,} walk steps")
    print(f"theorem-4 bound:          {bound:>14,.0f}")
    print(f"naive power iteration:    {naive_pi:>14,.0f} edge touches (analytic)")
    print(f"naive MC rebuilds:        {naive_mc:>14,.0f} walk steps (analytic)")

    # Measure the naive MC strategy for real on a small prefix, to show the
    # analytic row is not a strawman.
    prefix = events[: min(150, m)]
    naive = NaiveMonteCarloRebuild(
        args.nodes,
        reset_probability=args.eps,
        walks_per_node=args.walks,
        rng=args.seed,
    )
    naive.process(prefix)
    incremental_prefix_cost = sum(
        r.steps_resimulated
        for r in map(
            IncrementalPageRank(
                reset_probability=args.eps, walks_per_node=args.walks, rng=args.seed
            ).apply,
            prefix,
        )
    )
    print(
        f"\nfirst {len(prefix)} arrivals, measured: naive rebuilds cost "
        f"{naive.total_work:,} steps vs incremental {incremental_prefix_cost:,}"
    )

    exact = exact_pagerank(final_graph, reset_probability=args.eps)
    error = np.abs(engine.pagerank() - exact).sum()
    overlap = len(
        {node for node, _ in engine.top(50)}
        & set(np.argsort(-exact)[:50].tolist())
    )
    print(
        f"\nfinal estimate quality: L1 error {error:.3f} vs exact solve, "
        f"top-50 overlap {overlap}/50"
    )


if __name__ == "__main__":
    main()
