"""Closed-form bounds: sanity, monotonicity, and the paper's worked numbers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import theory
from repro.errors import ConfigurationError


class TestHarmonic:
    def test_small_values_exact(self):
        assert theory.harmonic_number(0) == 0.0
        assert theory.harmonic_number(1) == 1.0
        assert theory.harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_asymptotic_branch_is_continuous(self):
        exact = float(np.sum(1.0 / np.arange(1, 999_999 + 1)))
        assert theory.harmonic_number(2_000_000) == pytest.approx(
            math.log(2_000_000) + 0.5772156649, rel=1e-6
        )
        assert theory.harmonic_number(999_999) == pytest.approx(exact)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            theory.harmonic_number(-1)


class TestUpdateCosts:
    def test_thm4_total_is_harmonic_sum_of_marginals(self):
        n, R, eps, m = 1000, 10, 0.2, 500
        marginal_sum = sum(
            theory.thm4_update_work_at(n, R, eps, t) for t in range(1, m + 1)
        )
        assert theory.thm4_total_update_work(n, R, eps, m) == pytest.approx(
            marginal_sum
        )

    def test_thm4_beats_naive_methods(self):
        """The headline comparison of §1.2 at realistic scale."""
        n, R, eps, m = 10**6, 10, 0.2, 10**7
        incremental = theory.thm4_total_update_work(n, R, eps, m)
        assert incremental < theory.naive_power_iteration_total_work(m, eps) / 1e3
        assert incremental < theory.naive_monte_carlo_total_work(n, m, eps) / 1e3

    def test_prop5_is_single_arrival_scale(self):
        n, R, eps, m = 1000, 10, 0.2, 5000
        assert theory.prop5_deletion_work(n, R, eps, m) == pytest.approx(
            theory.thm4_update_work_at(n, R, eps, m)
        )

    def test_dirichlet_smaller_than_permutation_for_large_m(self):
        n, R, eps, m = 1000, 10, 0.2, 10**6
        assert theory.dirichlet_total_update_work(
            n, R, eps, m
        ) < theory.thm4_total_update_work(n, R, eps, m)

    def test_thm6_is_16x_thm4_in_the_log_regime(self):
        n, R, eps, m = 1000, 10, 0.2, 10**6
        ratio = theory.thm6_salsa_total_update_work(
            n, R, eps, m
        ) / theory.thm4_total_update_work(n, R, eps, m)
        assert 15.0 < ratio < 16.5  # H_m vs ln m slack

    def test_initialization_work(self):
        assert theory.mc_initialization_work(100, 5, 0.2) == pytest.approx(2500)


class TestPowerLawModel:
    def test_eq3_normalizes(self):
        """Equation 3's integral approximation under-normalizes by
        Θ(ζ(α)·n^{α−1}); the error must be below ~10% at moderate n and
        shrink as n grows (the paper 'ignores the very small error')."""
        small = theory.eq3_powerlaw_scores(10_000, 0.75).sum()
        large = theory.eq3_powerlaw_scores(1_000_000, 0.75).sum()
        assert 0.88 < small <= 1.0
        assert small < large <= 1.0
        assert (np.diff(theory.eq3_powerlaw_scores(1000, 0.75)) <= 0).all()

    def test_eq3_matches_normalizer(self):
        n, alpha = 500, 0.6
        scores = theory.eq3_powerlaw_scores(n, alpha)
        eta = theory.eq3_normalizer(n, alpha)
        assert scores[0] == pytest.approx(eta)

    def test_eq4_remark2_worked_number(self):
        """Remark 2: α=0.75, c=5, R=10, k=100, n=1e8 → s_k ≈ 63200."""
        s_k = theory.eq4_walk_length(100, 10**8, 0.75, c=5)
        assert s_k == pytest.approx(63245.55, rel=1e-3)  # '632k = 63200'

    def test_cor9_remark2_worked_number(self):
        """Remark 2: same parameters → fetch bound ≈ 2000 ('20k = 2000')."""
        bound = theory.cor9_topk_fetch_bound(100, 0.75, c=5, R=10)
        assert bound == pytest.approx(2001.0, rel=2e-2)

    def test_thm8_monotone_in_s_and_r(self):
        low_s = theory.thm8_fetch_bound(1000, 10**6, 10, 0.75)
        high_s = theory.thm8_fetch_bound(50_000, 10**6, 10, 0.75)
        assert high_s > low_s
        more_walks = theory.thm8_fetch_bound(50_000, 10**6, 40, 0.75)
        assert more_walks < high_s

    def test_thm8_sublinear_in_s_for_alpha_above_half(self):
        """For α > 1/2 the bound grows like s^{1/α} with a tiny prefactor;
        fetches remain far below the walk length at practical sizes."""
        n, R, alpha = 10**7, 10, 0.75
        for s in (1000, 10_000, 50_000):
            assert theory.thm8_fetch_bound(s, n, R, alpha) < s / 10

    def test_alpha_validation(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                theory.eq3_powerlaw_scores(100, bad)
            with pytest.raises(ConfigurationError):
                theory.eq4_walk_length(10, 100, bad)
            with pytest.raises(ConfigurationError):
                theory.thm8_fetch_bound(100, 100, 10, bad)

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            theory.eq4_walk_length(0, 100, 0.75)
        with pytest.raises(ConfigurationError):
            theory.eq4_walk_length(200, 100, 0.75)

    def test_exponent_conversions_invert(self):
        for alpha in (0.3, 0.5, 0.77, 0.95):
            gamma = theory.rank_exponent_to_tail_exponent(alpha)
            assert theory.tail_exponent_to_rank_exponent(gamma) == pytest.approx(
                alpha
            )

    def test_thm1_required_walks(self):
        n = 10**6
        # average node: R = O(ln n)
        assert theory.thm1_required_walks(n, 1.0 / n) == pytest.approx(
            math.log(n)
        )
        # heavy node: fewer walks suffice
        assert theory.thm1_required_walks(n, 100.0 / n) < math.log(n)
