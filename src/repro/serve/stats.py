"""Serving observability: hit/shed counters and a latency histogram.

The serving layer's health is read off three rates — result-cache hit
rate, load-shed rate, and the latency distribution — exactly the triple a
production dashboard for a read-heavy store shows.  :class:`ServeStats` is
the one object all serving components bill into; it is thread-safe because
the :class:`~repro.serve.batcher.RequestBatcher` worker pool shares it.

Since the observability plane landed (DESIGN.md §12), ``ServeStats`` is a
thin view over a :class:`~repro.obs.MetricsRegistry`: every record lands
in registry metrics (``repro_serve_*`` and ``repro_scheduler_*``), and the
legacy attributes (``.queries``, ``.hit_rate``, …) read them back.  Pass a
shared registry to get the serve tier into a unified Prometheus
exposition; omit it and the stats own a private one.

Latencies land in geometric buckets (factor 2 from 1 µs), so percentiles
are bucket-resolution estimates — interpolated within the containing
bucket and clamped to the observed max, good enough to see a cache turning
10 ms walks into 10 µs lookups, with O(1) memory forever.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    STEP_BUCKETS,
)

__all__ = ["ServeStats"]

#: Legacy aliases — the bucket schemes now live in :mod:`repro.obs.metrics`.
_BUCKET_BOUNDS = list(LATENCY_BUCKETS)
_BATCH_BUCKET_BOUNDS = [int(b) for b in BATCH_SIZE_BUCKETS]
_STEP_BUCKET_BOUNDS = [int(b) for b in STEP_BUCKETS]


class ServeStats:
    """Counters + latency histogram for the query-serving layer.

    All counts are billed into (and read back from) ``self.registry``; the
    public attribute/property surface is unchanged from the pre-registry
    implementation.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._queries = reg.counter(
            "repro_serve_queries_total",
            "Answered queries by result-cache outcome",
            labels=("result",),
        )
        self._shed = reg.counter(
            "repro_serve_shed_total", "Requests refused by admission control"
        )
        self._coalesced = reg.counter(
            "repro_serve_coalesced_total",
            "Duplicate in-flight requests folded into one computation",
        )
        self._invalidated = reg.counter(
            "repro_serve_invalidated_results_total",
            "Cached results dropped by mutation footprints",
        )
        self._flushes = reg.counter(
            "repro_serve_cache_flushes_total", "Full result-cache flushes"
        )
        self._latency = reg.histogram(
            "repro_serve_latency_seconds",
            "Per-query serve latency",
            buckets=LATENCY_BUCKETS,
        )
        self._kernel_batches = reg.counter(
            "repro_serve_kernel_batches_total",
            "Multi-seed query-kernel invocations",
        )
        self._kernel_queries = reg.counter(
            "repro_serve_kernel_queries_total",
            "Cache-miss queries carried by kernel batches",
        )
        self._batch_size = reg.histogram(
            "repro_serve_kernel_batch_size",
            "Queries per kernel invocation",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._steps = reg.histogram(
            "repro_serve_kernel_steps_per_query",
            "Realized walk length (visits) per kernel-served query",
            buckets=STEP_BUCKETS,
        )
        #: Bounded-staleness scheduler accounting (PR 6).
        self._deferred = reg.counter(
            "repro_scheduler_deferred_events_total",
            "Mutations queued by the staleness scheduler",
        )
        self._stale_depth = reg.gauge(
            "repro_scheduler_stale_depth", "Current stale-queue depth"
        )
        self._stale_depth_max = reg.gauge(
            "repro_scheduler_stale_depth_max",
            "High-water mark of the stale-queue depth",
        )
        self._repairs = reg.counter(
            "repro_scheduler_repairs_total",
            "Scheduler flushes by trigger reason",
            labels=("reason",),
        )
        self._repaired_events = reg.counter(
            "repro_scheduler_repaired_events_total",
            "Deferred arrivals drained by scheduler flushes",
        )
        self._repair_latency = reg.histogram(
            "repro_scheduler_repair_latency_seconds",
            "Per-flush repair latency",
            buckets=LATENCY_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_query(self, *, hit: bool, latency: float) -> None:
        """Bill one answered query (a shed request is *not* a query)."""
        with self._lock:
            self._queries.inc(result="hit" if hit else "miss")
            self._latency.observe(latency)

    def reset(self) -> None:
        """Zero every counter and the latency histogram.

        A :class:`~repro.serve.batcher.RequestBatcher` restart reuses the
        engine's long-lived stats object; without a reset the second
        session's rates are polluted by the first session's counts (the
        regression ``tests/test_serve.py`` pins down).  Atomic with
        respect to concurrent recording.  Only the serve/scheduler metrics
        this object owns are zeroed — other metrics in a shared registry
        (store operations, kernel stages) are untouched.
        """
        with self._lock:
            for metric in (
                self._queries,
                self._shed,
                self._coalesced,
                self._invalidated,
                self._flushes,
                self._latency,
                self._kernel_batches,
                self._kernel_queries,
                self._batch_size,
                self._steps,
                self._deferred,
                self._stale_depth,
                self._stale_depth_max,
                self._repairs,
                self._repaired_events,
                self._repair_latency,
            ):
                metric.reset()

    def record_kernel_batch(self, batch_size: int, steps_per_query) -> None:
        """Bill one multi-seed kernel invocation.

        ``batch_size`` is how many cache-miss queries the invocation
        carried (lands in the geometric batch-size histogram);
        ``steps_per_query`` is each query's realized walk length in
        visits (lands in the steps-per-query histogram).
        """
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        with self._lock:
            self._kernel_batches.inc()
            self._kernel_queries.inc(batch_size)
            self._batch_size.observe(batch_size)
            for steps in steps_per_query:
                self._steps.observe(steps)

    def record_shed(self) -> None:
        with self._lock:
            self._shed.inc()

    def record_coalesced(self) -> None:
        with self._lock:
            self._coalesced.inc()

    def record_invalidation(self, entries: int, *, flush: bool = False) -> None:
        with self._lock:
            self._invalidated.inc(entries)
            if flush:
                self._flushes.inc()

    def record_deferred(self, events: int, depth: int) -> None:
        """Bill mutations queued by the staleness scheduler.

        ``events`` is how many arrivals this deferral added; ``depth`` is
        the stale-queue depth after it (also tracked as a high-water
        mark, the dashboard's backlog gauge).
        """
        if events <= 0:
            raise ConfigurationError(f"events must be positive, got {events}")
        with self._lock:
            self._deferred.inc(events)
            self._stale_depth.set(depth)
            self._stale_depth_max.set_max(depth)

    def record_repair(
        self, events: int, latency: float, *, reason: str = "manual", depth: int = 0
    ) -> None:
        """Bill one scheduler flush draining ``events`` deferred arrivals.

        ``reason`` attributes the trigger: ``"budget"`` (error budget
        exceeded), ``"read"`` (repair-on-read for a stale query seed), or
        anything else (manual / close).  ``depth`` is the stale-queue
        depth left behind (normally 0).
        """
        with self._lock:
            self._repairs.inc(reason=reason)
            self._repaired_events.inc(events)
            self._stale_depth.set(depth)
            self._repair_latency.observe(latency)

    # ------------------------------------------------------------------
    # Legacy counter views
    # ------------------------------------------------------------------

    @property
    def queries(self) -> int:
        return int(self._queries.total())

    @property
    def hits(self) -> int:
        return int(self._queries.value(result="hit"))

    @property
    def misses(self) -> int:
        return int(self._queries.value(result="miss"))

    @property
    def shed(self) -> int:
        return int(self._shed.total())

    @property
    def coalesced(self) -> int:
        return int(self._coalesced.total())

    @property
    def invalidated_results(self) -> int:
        return int(self._invalidated.total())

    @property
    def flushes(self) -> int:
        return int(self._flushes.total())

    @property
    def kernel_batches(self) -> int:
        return int(self._kernel_batches.total())

    @property
    def kernel_queries(self) -> int:
        return int(self._kernel_queries.total())

    @property
    def deferred_events(self) -> int:
        return int(self._deferred.total())

    @property
    def stale_depth(self) -> int:
        return int(self._stale_depth.value())

    @property
    def max_stale_depth(self) -> int:
        return int(self._stale_depth_max.value())

    @property
    def repairs(self) -> int:
        return int(self._repairs.total())

    @property
    def repaired_events(self) -> int:
        return int(self._repaired_events.total())

    @property
    def budget_repairs(self) -> int:
        return int(self._repairs.value(reason="budget"))

    @property
    def read_repairs(self) -> int:
        return int(self._repairs.value(reason="read"))

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        queries = self.queries
        return self.hits / queries if queries else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of *offered* load (queries + sheds) that was shed."""
        shed = self.shed
        offered = self.queries + shed
        return shed / offered if offered else 0.0

    @property
    def mean_latency(self) -> float:
        return self._latency.mean()

    @property
    def max_latency(self) -> float:
        return self._latency.max_value()

    @property
    def mean_kernel_batch(self) -> float:
        """Mean cache-miss queries per kernel invocation."""
        batches = self.kernel_batches
        return self.kernel_queries / batches if batches else 0.0

    @property
    def mean_steps_per_query(self) -> float:
        """Mean realized walk length (visits) per kernel-served query."""
        kernel_queries = self.kernel_queries
        return self._steps.sum_value() / kernel_queries if kernel_queries else 0.0

    @property
    def mean_repair_latency(self) -> float:
        return self._repair_latency.mean()

    @property
    def max_repair_latency(self) -> float:
        return self._repair_latency.max_value()

    def repair_latency_percentile(self, p: float) -> float:
        """Repair-latency percentile ``p`` in [0, 1] (interpolated)."""
        return self._repair_latency.percentile(p)

    def kernel_batch_size_histogram(self) -> Dict[int, int]:
        """Nonzero batch-size buckets as ``{upper_bound: count}``."""
        return {
            int(bound): count
            for bound, count in self._batch_size.bucket_counts().items()
        }

    def steps_per_query_histogram(self) -> Dict[int, int]:
        """Nonzero steps-per-query buckets as ``{upper_bound: count}``."""
        return {
            int(bound): count
            for bound, count in self._steps.bucket_counts().items()
        }

    def percentile(self, p: float) -> float:
        """Latency percentile ``p`` in [0, 1] (interpolated bucket estimate)."""
        return self._latency.percentile(p)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """All counters and headline rates, frozen (safe to keep around)."""
        with self._lock:
            queries = self.queries
            hits = self.hits
            shed = self.shed
            kernel_batches = self.kernel_batches
            kernel_queries = self.kernel_queries
            return {
                "queries": queries,
                "hits": hits,
                "misses": self.misses,
                "shed": shed,
                "coalesced": self.coalesced,
                "invalidated_results": self.invalidated_results,
                "flushes": self.flushes,
                "hit_rate": hits / queries if queries else 0.0,
                "shed_rate": (
                    shed / (queries + shed) if (queries + shed) else 0.0
                ),
                "mean_latency": self._latency.mean(),
                "max_latency": self._latency.max_value(),
                "kernel_batches": kernel_batches,
                "kernel_queries": kernel_queries,
                "mean_kernel_batch": (
                    kernel_queries / kernel_batches if kernel_batches else 0.0
                ),
                "mean_steps_per_query": (
                    self._steps.sum_value() / kernel_queries
                    if kernel_queries
                    else 0.0
                ),
                "deferred_events": self.deferred_events,
                "stale_depth": self.stale_depth,
                "max_stale_depth": self.max_stale_depth,
                "repairs": self.repairs,
                "repaired_events": self.repaired_events,
                "budget_repairs": self.budget_repairs,
                "read_repairs": self.read_repairs,
                "mean_repair_latency": self._repair_latency.mean(),
                "max_repair_latency": self._repair_latency.max_value(),
            }

    def render(self) -> str:
        """Human-readable one-screen summary (examples print this)."""
        snap = self.snapshot()
        lines = [
            f"queries {snap['queries']:.0f}  "
            f"hit rate {snap['hit_rate']:.1%}  "
            f"shed {snap['shed']:.0f} ({snap['shed_rate']:.1%})  "
            f"coalesced {snap['coalesced']:.0f}",
            f"invalidated results {snap['invalidated_results']:.0f}  "
            f"full flushes {snap['flushes']:.0f}",
            f"latency mean {snap['mean_latency'] * 1e3:.3f} ms  "
            f"p50 {self.percentile(0.50) * 1e3:.3f} ms  "
            f"p99 {self.percentile(0.99) * 1e3:.3f} ms  "
            f"max {snap['max_latency'] * 1e3:.3f} ms",
            f"kernel batches {snap['kernel_batches']:.0f}  "
            f"mean batch {snap['mean_kernel_batch']:.1f}  "
            f"mean steps/query {snap['mean_steps_per_query']:.0f}",
            f"stale queue {snap['stale_depth']:.0f} (max {snap['max_stale_depth']:.0f})  "
            f"deferred {snap['deferred_events']:.0f}  "
            f"repairs {snap['repairs']:.0f} "
            f"(budget {snap['budget_repairs']:.0f}, read {snap['read_repairs']:.0f})  "
            f"repair mean {snap['mean_repair_latency'] * 1e3:.3f} ms "
            f"p99 {self.repair_latency_percentile(0.99) * 1e3:.3f} ms",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ServeStats(queries={self.queries}, hit_rate={self.hit_rate:.2f}, "
            f"shed={self.shed}, coalesced={self.coalesced})"
        )
