"""Storage substrate: the "Social Store" / "PageRank Store" of the paper.

The paper assumes the social graph lives in distributed shared memory
(FlockDB at Twitter) with cheap random access, and that walk segments live
in a second store queried via *fetch* operations.  This package provides
in-memory equivalents whose entire point is faithful *accounting*: every
adjacency call and every fetch is counted, because the paper's cost model
is measured in exactly those units.
"""

from repro.store.backend import GraphBackend, InMemoryGraphBackend
from repro.store.pagerank_store import FetchResult, PageRankStore
from repro.store.persistence import (
    load_engine,
    load_walk_store,
    save_engine,
    save_walk_store,
)
from repro.store.sharded import ShardedGraphBackend
from repro.store.social_store import SocialStore
from repro.store.stats import CallStats, LatencyModel

__all__ = [
    "CallStats",
    "LatencyModel",
    "GraphBackend",
    "InMemoryGraphBackend",
    "ShardedGraphBackend",
    "SocialStore",
    "PageRankStore",
    "FetchResult",
    "save_walk_store",
    "load_walk_store",
    "save_engine",
    "load_engine",
]
