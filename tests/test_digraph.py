"""Unit tests for DynamicDiGraph: mutation, sampling, snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DuplicateEdgeError,
    EdgeNotFoundError,
    EmptyNeighborhoodError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graph.digraph import DynamicDiGraph


class TestConstruction:
    def test_empty(self):
        graph = DynamicDiGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            DynamicDiGraph(-1)

    def test_from_edges_grows_nodes(self):
        graph = DynamicDiGraph.from_edges([(0, 5), (5, 2)])
        assert graph.num_nodes == 6
        assert graph.has_edge(0, 5)
        assert graph.has_edge(5, 2)

    def test_copy_is_independent(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 0)
        assert not graph.has_edge(2, 0)
        assert clone.has_edge(2, 0)

    def test_networkx_round_trip(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
        back = DynamicDiGraph.from_networkx(graph.to_networkx())
        assert sorted(back.edges()) == sorted(graph.edges())
        assert back.num_nodes == graph.num_nodes


class TestEdgeMutation:
    def test_add_and_query(self):
        graph = DynamicDiGraph(3)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert (0, 1) in graph
        assert graph.out_degree(0) == 1
        assert graph.in_degree(1) == 1

    def test_duplicate_rejected(self):
        graph = DynamicDiGraph(3)
        graph.add_edge(0, 1)
        with pytest.raises(DuplicateEdgeError):
            graph.add_edge(0, 1)

    def test_self_loop_policy(self):
        loose = DynamicDiGraph(2)
        loose.add_edge(1, 1)
        assert loose.has_edge(1, 1)
        strict = DynamicDiGraph(2, allow_self_loops=False)
        with pytest.raises(SelfLoopError):
            strict.add_edge(1, 1)

    def test_unknown_node_rejected(self):
        graph = DynamicDiGraph(2)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(0, 7)

    def test_remove_edge(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert graph.num_edges == 2
        assert graph.out_degree(0) == 1
        assert graph.in_degree(1) == 0

    def test_remove_missing_edge_raises(self):
        graph = DynamicDiGraph(3)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_remove_then_readd(self):
        graph = DynamicDiGraph.from_edges([(0, 1)])
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        assert graph.num_edges == 1

    def test_swap_pop_keeps_other_adjacency(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        graph.remove_edge(0, 2)
        assert sorted(graph.out_neighbors(0)) == [1, 3]
        # position maps must stay consistent for further removals
        graph.remove_edge(0, 1)
        assert graph.out_neighbors(0) == [3]

    def test_interleaved_mutations_match_reference(self):
        """Random add/remove sequence checked against a set-based model."""
        rng = np.random.default_rng(5)
        graph = DynamicDiGraph(10)
        model: set[tuple[int, int]] = set()
        for _ in range(500):
            u, v = int(rng.integers(10)), int(rng.integers(10))
            if (u, v) in model and rng.random() < 0.5:
                graph.remove_edge(u, v)
                model.remove((u, v))
            elif (u, v) not in model:
                graph.add_edge(u, v)
                model.add((u, v))
        assert set(graph.edges()) == model
        for node in range(10):
            assert graph.out_degree(node) == sum(1 for e in model if e[0] == node)
            assert graph.in_degree(node) == sum(1 for e in model if e[1] == node)
            assert set(graph.out_neighbors(node)) == {
                v for u, v in model if u == node
            }
            assert set(graph.in_neighbors(node)) == {
                u for u, v in model if v == node
            }


class TestSampling:
    def test_random_out_neighbor_uniform(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (0, 2), (0, 3), (0, 4)])
        rng = np.random.default_rng(0)
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        for _ in range(4000):
            counts[graph.random_out_neighbor(0, rng)] += 1
        for count in counts.values():
            assert 800 < count < 1200  # 1000 ± 20%

    def test_random_in_neighbor(self):
        graph = DynamicDiGraph.from_edges([(1, 0), (2, 0)])
        rng = np.random.default_rng(0)
        seen = {graph.random_in_neighbor(0, rng) for _ in range(50)}
        assert seen == {1, 2}

    def test_empty_neighborhood_raises(self):
        graph = DynamicDiGraph(2)
        graph.add_edge(0, 1)
        with pytest.raises(EmptyNeighborhoodError):
            graph.random_out_neighbor(1)
        with pytest.raises(EmptyNeighborhoodError):
            graph.random_in_neighbor(0)

    def test_random_edge_covers_arena(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        graph = DynamicDiGraph.from_edges(edges)
        rng = np.random.default_rng(1)
        seen = {graph.random_edge(rng) for _ in range(200)}
        assert seen == set(edges)

    def test_random_edge_empty_raises(self):
        with pytest.raises(EdgeNotFoundError):
            DynamicDiGraph(3).random_edge()


class TestDegreesAndSnapshots:
    def test_degree_arrays(self, tiny_graph):
        out = tiny_graph.out_degree_array()
        inn = tiny_graph.in_degree_array()
        assert out.tolist() == [2, 2, 1, 0]
        assert inn.tolist() == [1, 1, 2, 1]
        assert out.sum() == inn.sum() == tiny_graph.num_edges

    def test_csr_out(self, tiny_graph):
        csr = tiny_graph.to_csr("out")
        assert csr.num_nodes == 4
        assert csr.num_edges == 5
        assert sorted(csr.neighbors(0).tolist()) == [1, 2]
        assert csr.degree(3) == 0
        assert csr.degrees().tolist() == [2, 2, 1, 0]

    def test_csr_in(self, tiny_graph):
        csr = tiny_graph.to_csr("in")
        assert sorted(csr.neighbors(2).tolist()) == [0, 1]
        assert csr.degree(3) == 1

    def test_csr_bad_direction(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.to_csr("sideways")

    def test_csr_is_snapshot(self, tiny_graph):
        csr = tiny_graph.to_csr("out")
        tiny_graph.add_edge(3, 0)
        assert csr.degree(3) == 0  # frozen


class TestNodeGrowth:
    def test_add_node_ids_sequential(self):
        graph = DynamicDiGraph(2)
        assert graph.add_node() == 2
        assert graph.add_node() == 3

    def test_ensure_node(self):
        graph = DynamicDiGraph(1)
        graph.ensure_node(4)
        assert graph.num_nodes == 5
        graph.ensure_node(2)  # no shrink
        assert graph.num_nodes == 5

    def test_ensure_negative_raises(self):
        with pytest.raises(NodeNotFoundError):
            DynamicDiGraph(1).ensure_node(-2)

    def test_len_and_repr(self, tiny_graph):
        assert len(tiny_graph) == 4
        assert "num_edges=5" in repr(tiny_graph)
