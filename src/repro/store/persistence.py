"""Snapshot/restore for walk stores and engines.

A production PageRank Store is expensive to initialize (``nR/ε`` walk
steps) and must survive process restarts; §2.2's whole point is never
recomputing it.  This module serializes any
:class:`~repro.core.walks.WalkIndex` (and a whole
:class:`~repro.core.incremental.IncrementalPageRank` engine: graph +
parameters + store) to a single ``.npz`` file.

Two on-disk formats exist (DESIGN.md §8); :func:`load_walk_store` and
:func:`load_engine` auto-detect the version from the snapshot metadata:

* **Version 1** (legacy): segments flattened into one int64 arena plus a
  lengths vector.  Loading replays ``add_segment`` per segment into an
  object-backed :class:`~repro.core.walks.WalkStore`, so the inverted
  visit index is rebuilt and validated by construction.
* **Version 2** (flat default): the same columnar arrays, but loading
  adopts the arena directly into a
  :class:`~repro.core.columnar.ColumnarWalkStore` and rebuilds the visit
  index with one vectorized pass — no per-segment interpreter replay.
  Saving from a columnar store exports its (compacted) arena without
  materializing a single Python segment object.
* **Version 3** (sharded manifest): one arena per shard plus a manifest —
  shard count, per-shard global-id tables, per-shard columns — loading
  into a :class:`~repro.core.sharded_walks.ShardedWalkIndex` shard by
  shard (each shard's index rebuild is the v2 vectorized pass, so cold
  restore parallelizes the same way cold build does).  A sharded store
  saved with ``version=2``/``1`` downgrades losslessly through its
  global-order export, and any flat snapshot migrates to sharded via
  :meth:`ShardedWalkIndex.from_arrays` — the migration tests in
  ``tests/test_persistence.py`` walk the whole v1 → v2 → v3 chain.

Every loader validates before it trusts: a corrupted or truncated file
(bad zip, missing arrays, inconsistent manifest) raises
:class:`~repro.errors.ConfigurationError` /
:class:`~repro.errors.WalkStateError` with a readable message instead of
leaking a numpy/zipfile exception.

**Shared snapshots** (the multi-process serve tier) are a directory —
``manifest.json`` plus one raw uncompressed ``.npy`` per array — written
by :func:`save_shared_snapshot`.  Unlike the ``.npz`` formats they are
mmap-able: :func:`attach_walk_store` / :func:`attach_engine` open every
arena with ``np.load(..., mmap_mode="r")`` and adopt it zero-copy via
:meth:`ColumnarWalkStore.from_shared`, so N worker processes attached to
one generation share a single set of physical pages through the OS page
cache.  Attached stores are read-only — every mutator raises
:class:`WalkStateError` — and updates flow through the coordinator, which
publishes a fresh generation (:mod:`repro.serve.epochs`).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.columnar import ColumnarWalkStore
from repro.core.sharded_walks import ShardedWalkIndex
from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    WalkIndex,
    WalkSegment,
    WalkStore,
)
from repro.errors import ConfigurationError, WalkStateError
from repro.graph.digraph import DynamicDiGraph
from repro.store.social_store import SocialStore

if TYPE_CHECKING:  # engine import is deferred at runtime (circular import)
    from repro.core.incremental import IncrementalPageRank

__all__ = [
    "save_walk_store",
    "load_walk_store",
    "save_engine",
    "load_engine",
    "save_shared_snapshot",
    "attach_walk_store",
    "attach_engine",
]

FORMAT_VERSION = 2
SHARDED_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)
PathLike = Union[str, Path]


def _store_arrays(store: WalkIndex) -> dict[str, np.ndarray]:
    """Columnar export of ``store``: one flat arena + per-segment columns.

    A :class:`ColumnarWalkStore` hands its (compacted) columns over
    directly; any other :class:`WalkIndex` is flattened segment by
    segment.  The array layout is identical for v1 and v2 snapshots —
    only the load path differs.
    """
    if isinstance(store, (ColumnarWalkStore, ShardedWalkIndex)):
        flat, lengths, reasons, parities = store.to_arrays()
    else:
        length_list = []
        reason_list = []
        parity_list = []
        flat_list: list[int] = []
        for _, segment in store.iter_segments():
            length_list.append(len(segment.nodes))
            reason_list.append(segment.end_reason)
            parity_list.append(segment.parity_offset)
            flat_list.extend(segment.nodes)
        flat = np.asarray(flat_list, dtype=np.int64)
        lengths = np.asarray(length_list, dtype=np.int64)
        reasons = np.asarray(reason_list, dtype=np.int8)
        parities = np.asarray(parity_list, dtype=np.int8)
    return {
        "segment_lengths": lengths,
        "segment_end_reasons": reasons,
        "segment_parities": parities,
        "segment_nodes": flat,
    }


def _check_version(version: int) -> None:
    if version not in SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"snapshot format version must be one of {SUPPORTED_VERSIONS}, "
            f"got {version!r}"
        )


def _resolve_version(store: WalkIndex, version: "int | None") -> int:
    """Default format for ``store``: v3 for sharded, v2 otherwise."""
    if version is None:
        return (
            SHARDED_VERSION
            if isinstance(store, ShardedWalkIndex)
            else FORMAT_VERSION
        )
    _check_version(version)
    if version == SHARDED_VERSION and not isinstance(store, ShardedWalkIndex):
        raise ConfigurationError(
            "version=3 snapshots hold sharded stores; save flat stores as "
            "v1/v2 or migrate via ShardedWalkIndex.from_arrays first"
        )
    return version


def _sharded_arrays(store: ShardedWalkIndex) -> dict[str, np.ndarray]:
    """v3 payload: one compacted arena + global-id table per shard."""
    arrays: dict[str, np.ndarray] = {}
    for shard_index, block in enumerate(store.shard_arrays()):
        for name, array in block.items():
            arrays[f"shard{shard_index}_{name}"] = array
    return arrays


def _snapshot_payload(
    store: WalkIndex, version: int
) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta extras, arrays)`` for one store at one resolved version.

    The single place that knows how a format version shapes the payload,
    shared by :func:`save_walk_store` and :func:`save_engine`.
    """
    if version == SHARDED_VERSION:
        assert isinstance(store, ShardedWalkIndex)  # _resolve_version checked
        return {"num_shards": store.num_shards}, _sharded_arrays(store)
    return {}, _store_arrays(store)


def save_walk_store(
    store: WalkIndex, path: PathLike, *, version: "int | None" = None
) -> None:
    """Serialize ``store`` to ``path`` (``.npz``).

    The default version is 3 (per-shard manifest) for sharded stores and
    2 (flat columnar) otherwise; ``version=1`` writes the legacy format
    (loadable by older readers), ``version=2`` downgrade-saves a sharded
    store through its global-order export.
    """
    version = _resolve_version(store, version)
    meta = {
        "format_version": version,
        "kind": "walk_store",
        "num_nodes": store.num_nodes,
        "track_sides": store.track_sides,
    }
    extras, arrays = _snapshot_payload(store, version)
    meta.update(extras)
    np.savez_compressed(Path(path), meta=json.dumps(meta), **arrays)


def _load_segments_into(store: WalkStore, data) -> None:
    """v1 load path: replay ``add_segment``, rebuilding the index as we go."""
    lengths = _array(data, "segment_lengths")
    reasons = _array(data, "segment_end_reasons")
    parities = _array(data, "segment_parities")
    flat = _array(data, "segment_nodes")
    if lengths.sum() != len(flat):
        raise WalkStateError("corrupt snapshot: arena length mismatch")
    offset = 0
    for length, reason, parity in zip(lengths, reasons, parities):
        nodes = flat[offset : offset + int(length)].tolist()
        offset += int(length)
        if reason not in (END_RESET, END_DANGLING):
            raise WalkStateError(f"corrupt snapshot: end reason {reason}")
        store.add_segment(
            WalkSegment([int(n) for n in nodes], int(reason), parity_offset=int(parity))
        )


def _columnar_from_data(data, meta) -> ColumnarWalkStore:
    """v2 load path: adopt the arena, rebuild the index vectorized."""
    lengths = _array(data, "segment_lengths")
    flat = _array(data, "segment_nodes")
    if lengths.sum() != len(flat):
        raise WalkStateError("corrupt snapshot: arena length mismatch")
    try:
        return ColumnarWalkStore.from_arrays(
            flat,
            lengths,
            _array(data, "segment_end_reasons"),
            _array(data, "segment_parities"),
            num_nodes=int(meta["num_nodes"]),
            track_sides=bool(meta["track_sides"]),
        )
    except WalkStateError as error:
        raise WalkStateError(f"corrupt snapshot: {error}") from error


def _open_snapshot(path: PathLike):
    """Open an ``.npz`` snapshot, mapping I/O corruption to clean errors.

    A truncated or garbage file makes :func:`np.load` raise zip/IO
    internals; surface those as :class:`ConfigurationError` so callers see
    "this file is not a readable snapshot", not a numpy traceback.
    """
    try:
        return np.load(Path(path), allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as error:
        raise ConfigurationError(
            f"{path} is not a readable snapshot: {error}"
        ) from error


def _array(data, key: str) -> np.ndarray:
    """Read one required array, mapping absence/corruption to clean errors."""
    try:
        return data[key]
    except KeyError:
        raise WalkStateError(
            f"corrupt snapshot: missing array {key!r} (truncated manifest?)"
        ) from None
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as error:
        raise WalkStateError(
            f"corrupt snapshot: array {key!r} unreadable: {error}"
        ) from error


def _read_meta(data, expected_kind: str) -> dict:
    try:
        meta = json.loads(str(_array(data, "meta")))
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"corrupt snapshot: unreadable metadata: {error}"
        ) from error
    if not isinstance(meta, dict):
        raise ConfigurationError("corrupt snapshot: metadata is not a mapping")
    if meta.get("format_version") not in SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"unsupported snapshot version {meta.get('format_version')!r}"
        )
    if meta.get("kind") != expected_kind:
        raise ConfigurationError(
            f"snapshot holds a {meta.get('kind')!r}, expected {expected_kind!r}"
        )
    return meta


def _sharded_from_data(data, meta) -> ShardedWalkIndex:
    """v3 load path: adopt per-shard arenas, validated against the manifest."""
    try:
        num_shards = int(meta["num_shards"])
    except (KeyError, TypeError, ValueError):
        raise WalkStateError(
            "corrupt snapshot: sharded manifest lacks a shard count"
        ) from None
    if num_shards <= 0:
        raise WalkStateError(
            f"corrupt snapshot: shard count must be positive, got {num_shards}"
        )
    blocks = []
    for shard_index in range(num_shards):
        blocks.append(
            {
                name: _array(data, f"shard{shard_index}_{name}")
                for name in (
                    "segment_nodes",
                    "segment_lengths",
                    "segment_end_reasons",
                    "segment_parities",
                    "global_ids",
                )
            }
        )
    try:
        return ShardedWalkIndex.from_shard_arrays(
            blocks,
            num_nodes=int(meta["num_nodes"]),
            track_sides=bool(meta["track_sides"]),
        )
    except WalkStateError:
        raise
    except (ValueError, IndexError, TypeError) as error:
        raise WalkStateError(f"corrupt snapshot: {error}") from error


def load_walk_store(path: PathLike) -> WalkIndex:
    """Load a store saved by :func:`save_walk_store` (version auto-detected).

    v1 snapshots replay into an object-backed :class:`WalkStore`; v2
    snapshots load zero-copy into a :class:`ColumnarWalkStore`; v3
    manifests restore a :class:`ShardedWalkIndex` shard by shard.  Either
    way the visit index is rebuilt from the segments, never trusted from
    disk.
    """
    with _open_snapshot(path) as data:
        meta = _read_meta(data, "walk_store")
        version = int(meta["format_version"])
        if version >= SHARDED_VERSION:
            return _sharded_from_data(data, meta)
        if version >= 2:
            return _columnar_from_data(data, meta)
        store = WalkStore(
            int(meta["num_nodes"]), track_sides=bool(meta["track_sides"])
        )
        _load_segments_into(store, data)
    return store


def save_engine(
    engine: "IncrementalPageRank", path: PathLike, *, version: "int | None" = None
) -> None:
    """Serialize an engine: parameters, graph edges, and walk store.

    The format defaults to the store's native version (v3 manifest for a
    sharded store, v2 otherwise); pass ``version=`` to downgrade-save.
    """
    version = _resolve_version(engine.walks, version)
    edges = engine.graph.edge_list()
    sources = np.asarray([u for u, _ in edges], dtype=np.int64)
    targets = np.asarray([v for _, v in edges], dtype=np.int64)
    meta = _engine_meta(engine, version)
    extras, arrays = _snapshot_payload(engine.walks, version)
    meta.update(extras)
    np.savez_compressed(
        Path(path),
        meta=json.dumps(meta),
        edge_sources=sources,
        edge_targets=targets,
        **arrays,
    )


def load_engine(path: PathLike, *, rng=None) -> "IncrementalPageRank":
    """Restore an engine saved by :func:`save_engine` (version auto-detected).

    The walk store is revalidated against the restored graph: every stored
    step must traverse an existing edge, and dangling ends must sit at
    out-degree-zero nodes — a corrupt or mismatched snapshot fails loudly
    instead of silently skewing estimates.  A v3 snapshot restores the
    engine with ``store_backend="sharded:<count>"`` so later
    reinitializations keep the sharded layout.
    """
    from repro.core.incremental import IncrementalPageRank

    with _open_snapshot(path) as data:
        meta = _read_meta(data, "incremental_pagerank")
        version = int(meta["format_version"])
        graph = DynamicDiGraph(
            int(meta["num_nodes"]), allow_self_loops=bool(meta["allow_self_loops"])
        )
        for source, target in zip(
            _array(data, "edge_sources"), _array(data, "edge_targets")
        ):
            graph.add_edge(int(source), int(target))
        if version >= SHARDED_VERSION:
            store: WalkIndex = _sharded_from_data(data, meta)
            backend = f"sharded:{store.num_shards}"
        elif version >= 2:
            store = _columnar_from_data(data, meta)
            backend = "columnar"
        else:
            store = WalkStore(
                graph.num_nodes, track_sides=bool(meta["track_sides"])
            )
            _load_segments_into(store, data)
            backend = "object"
        engine = IncrementalPageRank(
            SocialStore.of_graph(graph),
            reset_probability=float(meta["reset_probability"]),
            walks_per_node=int(meta["walks_per_node"]),
            reroute_policy=str(meta["reroute_policy"]),
            rng=rng,
            store_backend=backend,
        )
        engine.pagerank_store.walks = store

    _validate_against_graph(engine)
    return engine


def _validate_against_graph(engine: "IncrementalPageRank") -> None:
    """Vectorized snapshot-vs-graph consistency check (O(total visits))."""
    graph = engine.graph
    walks = engine.walks
    if walks.num_segments == 0:
        return
    segment_ids = range(walks.num_segments)
    views = [walks.segment_view(sid) for sid in segment_ids]
    lengths = np.fromiter((v.size for v in views), dtype=np.int64, count=len(views))
    flat = np.concatenate(views)
    ends = np.cumsum(lengths)
    # node ids must be in range *before* the integer edge-key encoding
    # below — an out-of-range id would alias onto a legitimate key
    if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= graph.num_nodes):
        bad = int(flat[(flat < 0) | (flat >= graph.num_nodes)][0])
        raise WalkStateError(
            f"snapshot mismatch: segment visits node {bad} outside the "
            f"{graph.num_nodes}-node graph"
        )
    # every stored step must traverse an existing edge
    is_step = np.ones(flat.size, dtype=bool)
    is_step[ends - 1] = False
    step_positions = np.flatnonzero(is_step)
    step_sources = flat[step_positions]
    step_targets = flat[step_positions + 1]
    key_base = np.int64(max(graph.num_nodes, 1))
    edges = graph.edge_list()
    edge_keys = np.asarray([u * key_base + v for u, v in edges], dtype=np.int64)
    valid = np.isin(step_sources * key_base + step_targets, edge_keys)
    if not valid.all():
        first = int(np.flatnonzero(~valid)[0])
        raise WalkStateError(
            f"snapshot mismatch: segment step {int(step_sources[first])}->"
            f"{int(step_targets[first])} not in graph"
        )
    # dangling ends must sit at out-degree-zero nodes
    last_nodes = flat[ends - 1]
    reasons = np.fromiter(
        (walks.end_reason_of(sid) for sid in segment_ids),
        dtype=np.int8,
        count=walks.num_segments,
    )
    for index in np.flatnonzero(reasons == END_DANGLING).tolist():
        node = int(last_nodes[index])
        if graph.out_degree(node) != 0:
            raise WalkStateError(
                f"snapshot mismatch: DANGLING end at non-dangling node {node}"
            )


# ----------------------------------------------------------------------
# Shared (mmap-able) snapshots — the multi-process serve attach path
# ----------------------------------------------------------------------

MANIFEST_NAME = "manifest.json"
SHARED_FORMAT = 1


def _engine_meta(engine: "IncrementalPageRank", version: int) -> dict:
    """Engine snapshot metadata (shared by .npz and directory formats)."""
    graph = engine.graph
    return {
        "format_version": version,
        "kind": "incremental_pagerank",
        "num_nodes": graph.num_nodes,
        "track_sides": engine.walks.track_sides,
        "reset_probability": engine.reset_probability,
        "walks_per_node": engine.walks_per_node,
        "reroute_policy": engine.reroute_policy,
        "allow_self_loops": graph.allow_self_loops,
    }


def save_shared_snapshot(target, directory: PathLike) -> Path:
    """Write a mmap-able snapshot *directory* for worker-process attach.

    ``target`` is an :class:`IncrementalPageRank` engine or a bare
    :class:`WalkIndex`.  Layout: ``manifest.json`` (the usual snapshot
    metadata plus the array listing) and one raw uncompressed ``.npy``
    file per array, so readers can memory-map the arenas instead of
    decompressing private copies.  Returns the directory path.

    The write is not atomic — publishers that swap generations under live
    readers must write into a fresh directory and flip a pointer afterward
    (:class:`repro.serve.epochs.ArenaPublisher` does exactly that).
    """
    from repro.core.incremental import IncrementalPageRank

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    if isinstance(target, IncrementalPageRank):
        store = target.walks
        version = _resolve_version(store, None)
        meta = _engine_meta(target, version)
        edges = target.graph.edge_list()
        arrays["edge_sources"] = np.asarray(
            [u for u, _ in edges], dtype=np.int64
        )
        arrays["edge_targets"] = np.asarray(
            [v for _, v in edges], dtype=np.int64
        )
    else:
        store = target
        version = _resolve_version(store, None)
        meta = {
            "format_version": version,
            "kind": "walk_store",
            "num_nodes": store.num_nodes,
            "track_sides": store.track_sides,
        }
    extras, payload = _snapshot_payload(store, version)
    meta.update(extras)
    arrays.update(payload)
    meta["shared_format"] = SHARED_FORMAT
    meta["arrays"] = sorted(arrays)
    for name, array in arrays.items():
        np.save(directory / f"{name}.npy", np.ascontiguousarray(array))
    manifest = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
    # the manifest lands last and atomically: a reader that can parse it
    # is guaranteed every array file it lists is fully written
    tmp.replace(manifest)
    return directory


def _read_shared_manifest(directory: PathLike, expected_kind: str) -> dict:
    directory = Path(directory)
    manifest = directory / MANIFEST_NAME
    if not directory.is_dir() or not manifest.is_file():
        raise ConfigurationError(
            f"{directory} is not a shared snapshot directory "
            f"(no {MANIFEST_NAME})"
        )
    try:
        meta = json.loads(manifest.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as error:
        raise WalkStateError(
            f"corrupt shared snapshot: unreadable manifest: {error}"
        ) from error
    if not isinstance(meta, dict):
        raise WalkStateError(
            "corrupt shared snapshot: manifest is not a mapping"
        )
    if meta.get("shared_format") != SHARED_FORMAT:
        raise WalkStateError(
            f"unsupported shared snapshot format "
            f"{meta.get('shared_format')!r}"
        )
    if meta.get("format_version") not in SUPPORTED_VERSIONS:
        raise WalkStateError(
            f"corrupt shared snapshot: unsupported store version "
            f"{meta.get('format_version')!r}"
        )
    kinds = (expected_kind,) if expected_kind != "walk_store" else (
        "walk_store",
        "incremental_pagerank",  # an engine snapshot contains a store
    )
    if meta.get("kind") not in kinds:
        raise WalkStateError(
            f"shared snapshot holds a {meta.get('kind')!r}, "
            f"expected {expected_kind!r}"
        )
    return meta


class _SharedArrays:
    """Array accessor over a snapshot directory (mmap'd, validated)."""

    def __init__(self, directory: Path, meta: dict) -> None:
        self._directory = directory
        listed = meta.get("arrays")
        if not isinstance(listed, list):
            raise WalkStateError(
                "corrupt shared snapshot: manifest lacks an array listing"
            )
        self._listed = set(listed)

    def __getitem__(self, key: str) -> np.ndarray:
        if key not in self._listed:
            raise WalkStateError(
                f"corrupt shared snapshot: missing array {key!r} "
                "(truncated manifest?)"
            )
        path = self._directory / f"{key}.npy"
        try:
            return np.load(path, mmap_mode="r", allow_pickle=False)
        except FileNotFoundError:
            raise WalkStateError(
                f"corrupt shared snapshot: array file {path.name} is listed "
                "in the manifest but absent"
            ) from None
        except (ValueError, OSError, EOFError) as error:
            raise WalkStateError(
                f"corrupt shared snapshot: array {key!r} unreadable: {error}"
            ) from error


def _attach_store_from(data: _SharedArrays, meta: dict) -> WalkIndex:
    """Build the read-only store a shared snapshot describes."""
    version = int(meta["format_version"])
    if version < 2:
        raise WalkStateError(
            "corrupt shared snapshot: v1 snapshots cannot be attached "
            "(no flat arena to share)"
        )
    try:
        if version >= SHARDED_VERSION:
            try:
                num_shards = int(meta["num_shards"])
            except (KeyError, TypeError, ValueError):
                raise WalkStateError(
                    "corrupt shared snapshot: sharded manifest lacks a "
                    "shard count"
                ) from None
            if num_shards <= 0:
                raise WalkStateError(
                    f"corrupt shared snapshot: shard count must be "
                    f"positive, got {num_shards}"
                )
            blocks = []
            for shard_index in range(num_shards):
                blocks.append(
                    {
                        name: data[f"shard{shard_index}_{name}"]
                        for name in (
                            "segment_nodes",
                            "segment_lengths",
                            "segment_end_reasons",
                            "segment_parities",
                            "global_ids",
                        )
                    }
                )
            return ShardedWalkIndex.from_shard_arrays(
                blocks,
                num_nodes=int(meta["num_nodes"]),
                track_sides=bool(meta["track_sides"]),
                copy=False,
            )
        lengths = data["segment_lengths"]
        flat = data["segment_nodes"]
        if int(lengths.sum()) != int(flat.size):
            raise WalkStateError(
                "corrupt shared snapshot: arena length mismatch"
            )
        return ColumnarWalkStore.from_shared(
            flat,
            lengths,
            data["segment_end_reasons"],
            data["segment_parities"],
            num_nodes=int(meta["num_nodes"]),
            track_sides=bool(meta["track_sides"]),
        )
    except WalkStateError:
        raise
    except (ValueError, IndexError, TypeError, KeyError) as error:
        raise WalkStateError(
            f"corrupt shared snapshot: {error}"
        ) from error


def attach_walk_store(directory: PathLike) -> WalkIndex:
    """Attach read-only to the store inside a shared snapshot directory.

    The node arenas stay memory-mapped (zero-copy, shared across every
    attached process via the page cache); the visit index and per-segment
    columns are rebuilt privately.  The result is bit-identical to an
    owned :func:`load_walk_store` of the same state, but write-protected:
    every mutator raises :class:`WalkStateError`.
    """
    directory = Path(directory)
    meta = _read_shared_manifest(directory, "walk_store")
    return _attach_store_from(_SharedArrays(directory, meta), meta)


def attach_engine(
    directory: PathLike, *, rng=None, validate: bool = True
) -> "IncrementalPageRank":
    """Attach read-only to the engine inside a shared snapshot directory.

    The restored engine's walk store is the mmap-backed read-only attach
    of :func:`attach_walk_store`: queries work exactly as on an owned
    load (same RNG contract, bit-identical answers), while mutations
    (``apply``/``apply_batch``) raise :class:`WalkStateError` — workers
    serve, the coordinator owns the write path.  ``validate=False`` skips
    the O(total visits) graph-consistency check for fast worker swaps onto
    generations the coordinator just wrote.
    """
    from repro.core.incremental import IncrementalPageRank

    directory = Path(directory)
    meta = _read_shared_manifest(directory, "incremental_pagerank")
    data = _SharedArrays(directory, meta)
    graph = DynamicDiGraph(
        int(meta["num_nodes"]), allow_self_loops=bool(meta["allow_self_loops"])
    )
    for source, target in zip(data["edge_sources"], data["edge_targets"]):
        graph.add_edge(int(source), int(target))
    store = _attach_store_from(data, meta)
    backend = (
        f"sharded:{store.num_shards}"
        if isinstance(store, ShardedWalkIndex)
        else "columnar"
    )
    engine = IncrementalPageRank(
        SocialStore.of_graph(graph),
        reset_probability=float(meta["reset_probability"]),
        walks_per_node=int(meta["walks_per_node"]),
        reroute_policy=str(meta["reroute_policy"]),
        rng=rng,
        store_backend=backend,
    )
    engine.pagerank_store.walks = store
    if validate:
        _validate_against_graph(engine)
    return engine


def load_shared_engine(
    directory: PathLike, *, rng=None, validate: bool = True
) -> "IncrementalPageRank":
    """Load an **owned, writable** engine from a shared snapshot directory.

    The recovery counterpart of :func:`attach_engine`: same directory
    format, but every array is copied out of the mmap into private memory
    and the store is built through the writable ``from_arrays`` paths, so
    the result accepts mutations (``apply_batch`` etc.).  This is what
    :func:`repro.serve.wal.recover_engine` restarts a coordinator from —
    a worker-style read-only attach could never replay the WAL tail.
    """
    from repro.core.incremental import IncrementalPageRank

    directory = Path(directory)
    meta = _read_shared_manifest(directory, "incremental_pagerank")
    data = _SharedArrays(directory, meta)
    graph = DynamicDiGraph(
        int(meta["num_nodes"]), allow_self_loops=bool(meta["allow_self_loops"])
    )
    for source, target in zip(data["edge_sources"], data["edge_targets"]):
        graph.add_edge(int(source), int(target))
    version = int(meta["format_version"])
    if version < 2:
        raise WalkStateError(
            "corrupt shared snapshot: v1 snapshots cannot be loaded "
            "(no flat arena)"
        )
    try:
        if version >= SHARDED_VERSION:
            num_shards = int(meta["num_shards"])
            blocks = [
                {
                    name: np.array(data[f"shard{shard_index}_{name}"])
                    for name in (
                        "segment_nodes",
                        "segment_lengths",
                        "segment_end_reasons",
                        "segment_parities",
                        "global_ids",
                    )
                }
                for shard_index in range(num_shards)
            ]
            store: WalkIndex = ShardedWalkIndex.from_shard_arrays(
                blocks,
                num_nodes=int(meta["num_nodes"]),
                track_sides=bool(meta["track_sides"]),
                copy=True,
            )
            backend = f"sharded:{store.num_shards}"
        else:
            store = ColumnarWalkStore.from_arrays(
                np.array(data["segment_nodes"]),
                np.array(data["segment_lengths"]),
                np.array(data["segment_end_reasons"]),
                np.array(data["segment_parities"]),
                num_nodes=int(meta["num_nodes"]),
                track_sides=bool(meta["track_sides"]),
            )
            backend = "columnar"
    except WalkStateError:
        raise
    except (ValueError, IndexError, TypeError, KeyError) as error:
        raise WalkStateError(f"corrupt shared snapshot: {error}") from error
    engine = IncrementalPageRank(
        SocialStore.of_graph(graph),
        reset_probability=float(meta["reset_probability"]),
        walks_per_node=int(meta["walks_per_node"]),
        reroute_policy=str(meta["reroute_policy"]),
        rng=rng,
        store_backend=backend,
    )
    engine.pagerank_store.walks = store
    if validate:
        _validate_against_graph(engine)
    return engine
