"""Random-number-generator plumbing.

Every stochastic component in this library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalizes it through :func:`ensure_rng`.  Components that need *independent*
streams (e.g. a workload generator and the walk engine consuming it) should
split a parent generator with :func:`spawn`.

Keeping all randomness on ``numpy.random.Generator`` (instead of the global
``random`` module) makes experiments reproducible end to end: a single seed
at the experiment driver determines the graph, the arrival order, the stored
walk segments, and the queries.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

__all__ = ["RngLike", "ensure_rng", "spawn", "geometric_reset_length"]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a generator seeded from OS entropy, an ``int`` yields a
    deterministically seeded generator, and an existing generator is returned
    unchanged (shared, not copied).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected int seed, numpy Generator, or None; got {type(rng).__name__}"
    )


def spawn(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(count)]


def geometric_reset_length(rng: np.random.Generator, reset_probability: float) -> int:
    """Sample the number of *steps before reset* of a reset walk.

    A walk flips an ε-coin before every step; the number of steps taken until
    the first reset is ``Geometric(ε) − 1`` (support ``{0, 1, 2, …}``, mean
    ``(1−ε)/ε``).  The number of *nodes* on such a segment is one more than
    the value returned here, making the expected segment node count ``1/ε``
    — the constant the paper normalizes by.
    """
    return int(rng.geometric(reset_probability)) - 1
