"""``REPRO_OBS`` observability levels and low-overhead stage profiling.

The hot paths — the fused query kernel, ``apply_batch``, per-shard repair
fan-out — cannot afford unconditional timing calls, so every profiling
hook is gated by a process-wide level:

* ``0`` (default) — off.  The disabled path costs one attribute read and
  one branch per *batch*, nothing per step.
* ``1`` — stage profiling.  Hot-path phases bill wall-clock seconds into
  per-stage histograms (``repro_kernel_stage_seconds{stage="reduce"}``).
* ``2`` — stage profiling **plus** structured tracing (spans).

The level is read once from the ``REPRO_OBS`` environment variable at
import and can be changed at runtime with :func:`set_level` (benchmarks
and the example do this explicitly rather than mutating the environment).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry

__all__ = [
    "LEVEL_OFF",
    "LEVEL_PROFILE",
    "LEVEL_TRACE",
    "get_level",
    "set_level",
    "StageProfiler",
]

LEVEL_OFF = 0
LEVEL_PROFILE = 1
LEVEL_TRACE = 2


def _parse_level(raw: Optional[str]) -> int:
    if not raw:
        return LEVEL_OFF
    try:
        level = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_OBS must be an integer 0-2, got {raw!r}"
        ) from None
    if not LEVEL_OFF <= level <= LEVEL_TRACE:
        raise ConfigurationError(f"REPRO_OBS must be 0, 1, or 2, got {level}")
    return level


_level = _parse_level(os.environ.get("REPRO_OBS"))


def get_level() -> int:
    """The current observability level (0 off, 1 profile, 2 trace)."""
    return _level


def set_level(level: int) -> int:
    """Set the process-wide observability level; returns the old level."""
    global _level
    if not LEVEL_OFF <= level <= LEVEL_TRACE:
        raise ConfigurationError(f"level must be 0, 1, or 2, got {level}")
    old, _level = _level, level
    return old


class StageProfiler:
    """Bills named hot-path stages into one labeled histogram.

    One profiler per layer, each with its own metric
    (``repro_kernel_stage_seconds``, ``repro_core_stage_seconds``, …).
    Callers snapshot :attr:`enabled` once per batch and accumulate raw
    ``perf_counter`` deltas locally, calling :meth:`record` once per stage
    per batch — so the per-step cost when enabled is two clock reads, and
    the cost when disabled is the single ``enabled`` check.

    ``enabled=True``/``False`` pins the profiler regardless of the global
    level (benchmarks use this to force the comparison arms).
    """

    __slots__ = ("registry", "stage_seconds", "_forced")

    def __init__(
        self,
        registry: MetricsRegistry,
        metric: str = "repro_kernel_stage_seconds",
        documentation: str = "Wall-clock seconds attributed to hot-path stages",
        enabled: Optional[bool] = None,
    ) -> None:
        self.registry = registry
        self.stage_seconds = registry.histogram(
            metric, documentation, labels=("stage",), buckets=LATENCY_BUCKETS
        )
        self._forced = enabled

    @property
    def enabled(self) -> bool:
        if self._forced is not None:
            return self._forced
        return _level >= LEVEL_PROFILE

    def record(self, stage: str, seconds: float) -> None:
        """Bill ``seconds`` of wall-clock time to ``stage``."""
        self.stage_seconds.observe(seconds, stage=stage)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into ``stage=name`` (checks enablement)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)
