"""Closed-form expressions from the paper, kept in one auditable place.

Every bound the experiments overlay on measured data comes from here, so a
reader can check each formula against the paper once and trust the plots.
References are to the arXiv v2 numbering.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "harmonic_number",
    "mc_initialization_work",
    "thm4_total_update_work",
    "thm4_update_work_at",
    "prop5_deletion_work",
    "dirichlet_total_update_work",
    "thm6_salsa_total_update_work",
    "naive_power_iteration_total_work",
    "naive_monte_carlo_total_work",
    "eq3_powerlaw_scores",
    "eq3_normalizer",
    "eq4_walk_length",
    "thm8_fetch_bound",
    "cor9_topk_fetch_bound",
    "thm1_required_walks",
    "staleness_error_increment",
    "rank_exponent_to_tail_exponent",
    "tail_exponent_to_rank_exponent",
]


def harmonic_number(m: int) -> float:
    """``H_m = Σ_{t=1..m} 1/t`` (exact below 10⁶, asymptotic above)."""
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if m == 0:
        return 0.0
    if m < 1_000_000:
        return float(np.sum(1.0 / np.arange(1, m + 1)))
    gamma = 0.57721566490153286
    return math.log(m) + gamma + 1.0 / (2 * m) - 1.0 / (12 * m * m)


def mc_initialization_work(n: int, R: int, eps: float) -> float:
    """Expected walk steps to initialize the store: ``nR/ε`` (§2.1)."""
    return n * R / eps


def thm4_total_update_work(n: int, R: int, eps: float, m: int) -> float:
    """Theorem 4: expected total update work over ``m`` random-order
    arrivals is at most ``(nR/ε²)·H_m ≤ (nR/ε²)·ln m``."""
    return n * R / (eps * eps) * harmonic_number(m)


def thm4_update_work_at(n: int, R: int, eps: float, t: int) -> float:
    """Theorem 4 (per-arrival form): expected work at arrival ``t`` is at
    most ``nR/(t·ε²)``."""
    if t <= 0:
        raise ConfigurationError(f"t must be positive, got {t}")
    return n * R / (t * eps * eps)


def prop5_deletion_work(n: int, R: int, eps: float, m: int) -> float:
    """Proposition 5: expected work for one random deletion from an
    ``m``-edge graph is at most ``nR/(m·ε²)``."""
    if m <= 0:
        raise ConfigurationError(f"m must be positive, got {m}")
    return n * R / (m * eps * eps)


def dirichlet_total_update_work(n: int, R: int, eps: float, m: int) -> float:
    """§2.2 remark: under the Dirichlet arrival model the total expected
    update work over ``m`` arrivals is ``(nR/ε²)·ln((m+n)/n)``."""
    return n * R / (eps * eps) * math.log((m + n) / n)


def thm6_salsa_total_update_work(n: int, R: int, eps: float, m: int) -> float:
    """Theorem 6: SALSA pays a factor 16 over Theorem 4 (2R walks ×
    mean length 2/ε (a factor 4 through ε²) × both endpoints)."""
    return 16.0 * n * R / (eps * eps) * math.log(max(m, 2))


def naive_power_iteration_total_work(m: int, eps: float) -> float:
    """§1.3: recomputing PageRank by power iteration on every arrival costs
    ``Σ_{x=1..m} x / ln(1/(1−ε)) = Ω(m²/ln(1/(1−ε)))`` edge-touches."""
    if not 0.0 < eps < 1.0:
        raise ConfigurationError(f"eps must be in (0, 1), got {eps}")
    return (m * (m + 1) / 2.0) / math.log(1.0 / (1.0 - eps))

def naive_monte_carlo_total_work(n: int, m: int, eps: float) -> float:
    """§1.3: rebuilding the Monte Carlo store on every arrival costs
    ``Ω(mn/ε)`` walk steps."""
    return m * n / eps


# ----------------------------------------------------------------------
# Power-law model (§3.1) and the personalized query bounds (§3.2)
# ----------------------------------------------------------------------


def eq3_normalizer(n: int, alpha: float) -> float:
    """``η = (1−α)/n^{1−α}`` (Equation 3's integral approximation)."""
    _check_alpha(alpha)
    return (1.0 - alpha) / n ** (1.0 - alpha)


def eq3_powerlaw_scores(n: int, alpha: float) -> np.ndarray:
    """Equation 3: ``π_j = (1−α)·j^{−α} / n^{1−α}`` for ``j = 1..n``."""
    _check_alpha(alpha)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return (1.0 - alpha) * ranks ** (-alpha) / n ** (1.0 - alpha)


def eq4_walk_length(k: int, n: int, alpha: float, c: float = 5.0) -> float:
    """Equation 4: walk length ``s_k = (c/(1−α))·k·(n/k)^{1−α}`` needed to
    see each of the top-``k`` nodes ``c`` times in expectation."""
    _check_alpha(alpha)
    if not 1 <= k <= n:
        raise ConfigurationError(f"k must be in [1, n]; got k={k}, n={n}")
    return c / (1.0 - alpha) * k * (n / k) ** (1.0 - alpha)


def thm8_fetch_bound(s: float, n: int, R: int, alpha: float) -> float:
    """Theorem 8: expected fetches for a stitched walk of length ``s`` is at
    most ``1 + (2(1−α)/(nR))^{1/α−1} · s^{1/α}``."""
    _check_alpha(alpha)
    if s < 0:
        raise ConfigurationError(f"s must be non-negative, got {s}")
    prefactor = (2.0 * (1.0 - alpha) / (n * R)) ** (1.0 / alpha - 1.0)
    return 1.0 + prefactor * s ** (1.0 / alpha)


def cor9_topk_fetch_bound(k: int, alpha: float, c: float = 5.0, R: int = 10) -> float:
    """Corollary 9: expected fetches to find the top ``k`` is at most
    ``1 + c^{1/α} / ((1−α)·(R/2)^{1/α−1}) · k``."""
    _check_alpha(alpha)
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    return 1.0 + (c ** (1.0 / alpha)) / (
        (1.0 - alpha) * (R / 2.0) ** (1.0 / alpha - 1.0)
    ) * k


def thm1_required_walks(n: int, pi_v: float, constant: float = 1.0) -> float:
    """Theorem 1 discussion: ``R = Ω(ln n / (n·π_v))`` walks per node give
    exponentially decaying tails for a node of PageRank ``π_v``; for
    average nodes (``π_v ≈ 1/n``) this is ``O(ln n)``."""
    if pi_v <= 0:
        raise ConfigurationError(f"pi_v must be positive, got {pi_v}")
    return constant * math.log(max(n, 2)) / (n * pi_v)


def staleness_error_increment(
    affected_segments: int,
    eps: float,
    total_visits: int,
    safety: float = 2.0,
    out_degree: int = 1,
) -> float:
    """Estimated PPR perturbation from deferring repair of one mutation.

    A mutation at source ``u`` touches the ``W(u)`` stored segments that
    visit ``u`` (``affected_segments``, Theorem 4's affected set), but
    each such visit reroutes only with probability ``1/d(u)`` — the coin
    behind the activation probability ``1 − (1 − 1/d)^{W(u)}`` — so the
    expected number of perturbed segments is ``W(u)/d(u)``, the local
    form of Theorem 4's per-arrival work ``nR/(t·ε²)``.  While repair is
    deferred, each perturbed segment's stale suffix has expected length
    ``1/ε`` by memorylessness of the ε-coin, and the eventual repair
    replaces it with a fresh tail of the same expected length — so the
    expected stored-visit mass whose distribution lags the graph is
    ``(W(u)/d(u))·(1 + 1/ε)`` counting both halves.  Expressed as a
    fraction of ``total_visits`` (the mass every score normalizes by)
    this estimates the L1 perturbation of the served PageRank vector.

    This is the error-budget unit of the bounded-staleness scheduler
    (:mod:`repro.core.scheduler`), the Agenda-style accounting of Hou et
    al. 2022 (PAPERS.md): an *expectation-level* estimate scaled by
    ``safety`` (default 2×), not a worst-case bound — realized tails are
    geometric, so a safety factor, not a max, is the right hedge.
    """
    if affected_segments < 0:
        raise ConfigurationError(
            f"affected_segments must be non-negative, got {affected_segments}"
        )
    if not 0.0 < eps <= 1.0:
        raise ConfigurationError(f"eps must be in (0, 1], got {eps}")
    if safety <= 0:
        raise ConfigurationError(f"safety must be positive, got {safety}")
    if out_degree < 1:
        raise ConfigurationError(f"out_degree must be >= 1, got {out_degree}")
    return (
        safety
        * (affected_segments / out_degree)
        * (1.0 + 1.0 / eps)
        / max(total_visits, 1)
    )


# ----------------------------------------------------------------------
# Exponent conventions
# ----------------------------------------------------------------------


def rank_exponent_to_tail_exponent(alpha: float) -> float:
    """Rank-size exponent α (``π_j ∝ j^{−α}``) → CCDF tail exponent
    ``γ = 1 + 1/α`` (``P(X > x) ∝ x^{−1/α}``, density exponent γ)."""
    _check_alpha(alpha)
    return 1.0 + 1.0 / alpha


def tail_exponent_to_rank_exponent(gamma: float) -> float:
    """Inverse of :func:`rank_exponent_to_tail_exponent`."""
    if gamma <= 1.0:
        raise ConfigurationError(f"gamma must exceed 1, got {gamma}")
    return 1.0 / (gamma - 1.0)


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
