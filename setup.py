"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package remains installable in offline environments whose setuptools lacks
PEP 660 editable-wheel support (``pip install -e . --no-build-isolation``
falls back to it, and ``python setup.py develop`` works directly).
"""

from setuptools import setup

setup()
