#!/usr/bin/env python
"""HTTP façade over the multi-process serve tier.

A minimal asyncio HTTP/1.1 server (stdlib only) in front of a
:class:`~repro.serve.frontend.MultiProcessFrontend`: queries fan out to
read-only worker processes attached to mmap'd walk-arena snapshots, edge
ingest mutates the coordinator's private engine and publishes a new arena
generation (the epoch-bump protocol — workers swap between drains, every
answer comes from one consistent epoch).

Endpoints::

    GET  /healthz                     liveness + generation + workers
    GET  /topk?seed=S&k=K[&length=L]  top-K personalized ranking for S
    GET  /ppr?seed=S&length=L         full PPR walk (top visit counts)
    POST /edges   {"edges": [[u,v],…]}  ingest + epoch bump
    GET  /metrics                     Prometheus exposition (repro_serve_mp_*)

Run:  python examples/api_server.py [--nodes 600] [--workers 2] [--port 8080]
      python examples/api_server.py --self-test   # start, probe, stop
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from urllib.parse import parse_qs, urlsplit

from repro.core.incremental import IncrementalPageRank
from repro.errors import LoadShedError, ReproError
from repro.graph.arrival import ArrivalEvent
from repro.serve import MultiProcessFrontend, QueryRequest
from repro.workloads.twitter_like import twitter_like_stream

MAX_BODY = 1 << 20


def build_frontend(args: argparse.Namespace) -> MultiProcessFrontend:
    stream = twitter_like_stream(args.nodes, args.edges, rng=args.seed)
    engine = IncrementalPageRank.from_graph(
        stream.snapshot_at(int(len(stream) * 0.9)),
        walks_per_node=args.walks,
        rng=args.seed,
    )
    return MultiProcessFrontend(
        engine,
        num_workers=args.workers,
        max_in_flight=args.max_in_flight,
    )


def _http_response(
    status: str, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: str, payload: dict) -> bytes:
    return _http_response(status, json.dumps(payload).encode("utf-8"))


def _error(status: str, message: str) -> bytes:
    return _json_response(status, {"error": message})


def _int_param(params: dict, name: str, default=None) -> int:
    values = params.get(name)
    if not values:
        if default is None:
            raise ValueError(f"missing required parameter {name!r}")
        return default
    return int(values[0])


class ApiServer:
    """Routes HTTP requests onto the frontend's asyncio façade."""

    def __init__(self, frontend: MultiProcessFrontend) -> None:
        self.frontend = frontend
        self.engine = frontend.engine

    async def handle(self, reader, writer) -> None:
        try:
            response = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - surface as 500, keep serving
            response = _error("500 Internal Server Error", str(exc))
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()

    async def _respond(self, reader) -> bytes:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return _error("400 Bad Request", "malformed request line")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY:
            return _error("413 Payload Too Large", "body too large")
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        url = urlsplit(target)
        params = parse_qs(url.query)

        if method == "GET" and url.path == "/healthz":
            return _json_response(
                "200 OK",
                {
                    "status": "ok",
                    "generation": self.frontend.generation,
                    "workers": self.frontend.num_workers,
                    "in_flight": self.frontend.in_flight,
                },
            )
        if method == "GET" and url.path == "/metrics":
            return _http_response(
                "200 OK",
                self.frontend.registry.render_prometheus().encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if method == "GET" and url.path == "/topk":
            return await self._topk(params)
        if method == "GET" and url.path == "/ppr":
            return await self._ppr(params)
        if method == "POST" and url.path == "/edges":
            return await self._ingest(body)
        return _error("404 Not Found", f"no route for {method} {url.path}")

    async def _topk(self, params: dict) -> bytes:
        try:
            seed = _int_param(params, "seed")
            k = _int_param(params, "k", 10)
            length = params.get("length")
            request = QueryRequest(
                kind="topk",
                seed=seed,
                k=k,
                length=int(length[0]) if length else None,
            )
        except (ValueError, ReproError) as exc:
            return _error("400 Bad Request", str(exc))
        try:
            result = await self.frontend.asubmit(request)
        except LoadShedError as exc:
            return _error("503 Service Unavailable", str(exc))
        if result is None:  # worker-side shed
            return _error("503 Service Unavailable", "request shed by worker")
        return _json_response(
            "200 OK",
            {
                "seed": result.seed,
                "k": result.k,
                "walk_length": result.walk_length,
                "ranking": result.ranking,
                "generation": self.frontend.generation,
            },
        )

    async def _ppr(self, params: dict) -> bytes:
        try:
            request = QueryRequest(
                kind="ppr",
                seed=_int_param(params, "seed"),
                length=_int_param(params, "length"),
            )
        except (ValueError, ReproError) as exc:
            return _error("400 Bad Request", str(exc))
        try:
            result = await self.frontend.asubmit(request)
        except LoadShedError as exc:
            return _error("503 Service Unavailable", str(exc))
        if result is None:
            return _error("503 Service Unavailable", "request shed by worker")
        top = sorted(
            result.visit_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:50]
        return _json_response(
            "200 OK",
            {
                "seed": result.seed,
                "length": result.length,
                "visits": [[int(n), int(c)] for n, c in top],
                "generation": self.frontend.generation,
            },
        )

    async def _ingest(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8"))
            edges = [(int(u), int(v)) for u, v in payload["edges"]]
        except (ValueError, KeyError, TypeError) as exc:
            return _error("400 Bad Request", f"bad edge payload: {exc}")
        graph = self.engine.graph
        events, skipped = [], 0
        fresh = set()
        for u, v in edges:
            if (
                u == v
                or not (0 <= u < graph.num_nodes)
                or not (0 <= v < graph.num_nodes)
                or graph.has_edge(u, v)
                or (u, v) in fresh
            ):
                skipped += 1
                continue
            fresh.add((u, v))
            events.append(ArrivalEvent("add", u, v))
        if events:
            self.engine.apply_batch(events)
            # publish_epoch blocks on worker acks — keep the loop free
            generation = await asyncio.get_running_loop().run_in_executor(
                None, self.frontend.publish_epoch
            )
        else:
            generation = self.frontend.generation
        return _json_response(
            "200 OK",
            {"applied": len(events), "skipped": skipped, "generation": generation},
        )


async def serve(args: argparse.Namespace) -> None:
    frontend = build_frontend(args)
    api = ApiServer(frontend)
    server = await asyncio.start_server(api.handle, args.host, args.port)
    address = server.sockets[0].getsockname()
    print(f"serving on http://{address[0]}:{address[1]} "
          f"({frontend.num_workers} workers, generation {frontend.generation})")
    try:
        async with server:
            await server.serve_forever()
    finally:
        frontend.close()


async def _fetch(host: str, port: int, request: str, body: bytes = b"") -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    head = request
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    writer.write(head.encode("ascii") + b"\r\n" + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = raw.split(b"\r\n", 1)[0].decode("latin-1")
    payload = raw.split(b"\r\n\r\n", 1)[1]
    return {"status": status, "body": payload}


async def self_test(args: argparse.Namespace) -> None:
    """Start the server on an ephemeral port, probe every route, stop."""
    frontend = build_frontend(args)
    api = ApiServer(frontend)
    server = await asyncio.start_server(api.handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        health = await _fetch(port=port, host=host, request="GET /healthz HTTP/1.1\r\n")
        assert "200" in health["status"], health
        assert json.loads(health["body"])["status"] == "ok"

        topk = await _fetch(host, port, "GET /topk?seed=3&k=5 HTTP/1.1\r\n")
        assert "200" in topk["status"], topk
        ranking = json.loads(topk["body"])["ranking"]
        assert len(ranking) <= 5 and ranking

        ppr = await _fetch(host, port, "GET /ppr?seed=3&length=200 HTTP/1.1\r\n")
        assert "200" in ppr["status"], ppr
        assert json.loads(ppr["body"])["visits"]

        bad = await _fetch(host, port, "GET /topk HTTP/1.1\r\n")
        assert "400" in bad["status"], bad

        before = json.loads(topk["body"])["generation"]
        edges = json.dumps(
            {"edges": [[1, 17], [2, 19], [1, 17], [5, 5]]}
        ).encode()
        ingest = await _fetch(
            host, port, "POST /edges HTTP/1.1\r\n", body=edges
        )
        assert "200" in ingest["status"], ingest
        outcome = json.loads(ingest["body"])
        assert outcome["generation"] == before + 1 or outcome["applied"] == 0

        again = await _fetch(host, port, "GET /topk?seed=3&k=5 HTTP/1.1\r\n")
        assert "200" in again["status"], again

        metrics = await _fetch(host, port, "GET /metrics HTTP/1.1\r\n")
        assert b"repro_serve_mp_requests_total" in metrics["body"]
        print(
            f"self-test OK: generation {outcome['generation']}, "
            f"applied {outcome['applied']} edges, "
            f"{frontend.num_workers} workers"
        )
    finally:
        server.close()
        await server.wait_closed()
        frontend.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=600)
    parser.add_argument("--edges", type=int, default=7200)
    parser.add_argument("--walks", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--max-in-flight", type=int, default=512)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="start on an ephemeral port, probe every route, exit",
    )
    args = parser.parse_args()
    try:
        asyncio.run(self_test(args) if args.self_test else serve(args))
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)


if __name__ == "__main__":
    main()
