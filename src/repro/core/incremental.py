"""Incremental Monte Carlo PageRank (§2.2) — the paper's core contribution.

The engine keeps ``R`` stored walk segments per node *distributionally
correct at all times* as edges arrive and depart, touching only the
segments that can possibly be affected:

* **Edge arrival** ``(u, v)`` with post-insertion out-degree ``d``: only
  segments that took a step out of ``u`` matter.  Each such step redirects
  through the new edge with probability ``1/d`` (uniform over ``d`` edges,
  conditioned against the old uniform-over-``d−1`` choice); the first
  redirected step truncates the segment there, appends ``v``, and the rest
  is resimulated with fresh ε-coins.  Segments stranded at a previously
  dangling ``u`` (``END_DANGLING``) take their pending step and resume.
* **Edge removal** ``(u, v)``: segments that never stepped ``u → v`` are
  *already* correctly distributed for the new graph (uniform over ``d``
  conditioned on ≠ removed edge = uniform over ``d−1``), so only segments
  whose walk used the removed edge are touched: truncate at the first use,
  re-take that step over the remaining out-edges (no new ε-coin — the
  "continue" was already decided), and resimulate onward.

Every mutation returns an :class:`UpdateReport` whose fields are the units
of Theorem 4 / Proposition 5: segments rerouted (``M_t``) and walk steps
resimulated.  The engine also evaluates the paper's §2.2 *activation
probability* ``1 − (1 − 1/d(u))^{W(u)}`` for each arrival — the probability
with which the PageRank Store would be called at all in the deployed
two-store layout — so experiments can report predicted-vs-actual store
traffic (an ablation DESIGN.md calls out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.monte_carlo import PAPER, scores_from_store
from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    WalkSegment,
    WalkStore,
    simulate_reset_walk,
)
from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent
from repro.graph.csr import batch_reset_walks
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng
from repro.store.pagerank_store import PageRankStore
from repro.store.social_store import SocialStore

__all__ = ["IncrementalPageRank", "UpdateReport", "REROUTE_REDIRECT", "REROUTE_RESIMULATE"]

REROUTE_REDIRECT = "redirect"
REROUTE_RESIMULATE = "resimulate_source"


@dataclass
class UpdateReport:
    """Cost accounting for one graph mutation (the paper's per-edge work)."""

    operation: str
    edge: tuple[int, int]
    #: M_t — number of stored segments that were modified.
    segments_rerouted: int = 0
    #: Walk steps freshly simulated while repairing segments.
    steps_resimulated: int = 0
    #: Visits removed from the index by truncations.
    steps_discarded: int = 0
    #: Segments examined (visited the endpoint) but left untouched.
    segments_examined: int = 0
    #: Steps spent creating R fresh segments for newly arrived nodes
    #: (initialization cost, kept separate from maintenance cost).
    steps_initialized: int = 0
    #: Paper's activation probability 1 − (1 − 1/d)^W at this arrival.
    activation_probability: float = 0.0
    #: Whether any store mutation actually happened.
    store_called: bool = False

    @property
    def work(self) -> int:
        """Total touched walk steps — the unit summed by Theorem 4 plots."""
        return self.steps_resimulated + self.steps_discarded


class IncrementalPageRank:
    """Always-fresh PageRank over a dynamic graph via stored walk segments."""

    def __init__(
        self,
        social_store: Optional[SocialStore] = None,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        reroute_policy: str = REROUTE_REDIRECT,
        pagerank_store: Optional[PageRankStore] = None,
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        if walks_per_node <= 0:
            raise ConfigurationError(
                f"walks_per_node must be positive, got {walks_per_node}"
            )
        if reroute_policy not in (REROUTE_REDIRECT, REROUTE_RESIMULATE):
            raise ConfigurationError(f"unknown reroute_policy {reroute_policy!r}")
        self.social_store = social_store if social_store is not None else SocialStore()
        self.reset_probability = reset_probability
        self.walks_per_node = walks_per_node
        self.reroute_policy = reroute_policy
        self._rng = ensure_rng(rng)
        self.pagerank_store = (
            pagerank_store
            if pagerank_store is not None
            else PageRankStore(self.social_store)
        )
        # Cumulative counters across the engine's lifetime.
        self.total_segments_rerouted = 0
        self.total_steps_resimulated = 0
        self.total_steps_discarded = 0
        self.arrivals_processed = 0
        self.removals_processed = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: DynamicDiGraph,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        reroute_policy: str = REROUTE_REDIRECT,
    ) -> "IncrementalPageRank":
        """Wrap an existing graph and initialize all walk segments (batch)."""
        engine = cls(
            SocialStore.of_graph(graph),
            reset_probability=reset_probability,
            walks_per_node=walks_per_node,
            rng=rng,
            reroute_policy=reroute_policy,
        )
        engine.initialize()
        return engine

    def initialize(self) -> None:
        """(Re)simulate ``R`` segments per existing node, vectorized."""
        graph = self.graph
        store = WalkStore(graph.num_nodes)
        if graph.num_nodes:
            csr = graph.to_csr("out")
            starts = np.repeat(
                np.arange(graph.num_nodes, dtype=np.int64), self.walks_per_node
            )
            result = batch_reset_walks(
                csr, starts, self.reset_probability, self._rng
            )
            for nodes, reason in zip(result.segments, result.end_reasons):
                store.add_segment(WalkSegment(nodes, int(reason)))
        self.pagerank_store.walks = store

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> DynamicDiGraph:
        return self.social_store.graph

    @property
    def walks(self) -> WalkStore:
        return self.pagerank_store.walks

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    # ------------------------------------------------------------------
    # Node arrival
    # ------------------------------------------------------------------

    def add_node(self) -> int:
        """Add a fresh node with its ``R`` (trivial) walk segments."""
        node = self.graph.add_node()
        self._ensure_walks(node)
        return node

    def _ensure_walks(self, node: int) -> int:
        """Make sure ``node`` owns R segments; returns steps simulated."""
        self.walks.ensure_node(node)
        existing = len(self.walks.segments_of[node])
        steps = 0
        for _ in range(existing, self.walks_per_node):
            segment = simulate_reset_walk(
                self.graph, node, self.reset_probability, self._rng
            )
            self.walks.add_segment(segment)
            steps += len(segment.nodes) - 1
        return steps

    # ------------------------------------------------------------------
    # Edge arrival (Theorem 4's operation)
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int) -> UpdateReport:
        """Insert an edge and repair exactly the affected segments."""
        nodes_before = self.graph.num_nodes
        self.graph.ensure_node(max(source, target))
        # W(u) must be read before mutation for the paper's activation
        # statistic (the deployed system checks it from cached counters),
        # and the affected-segment snapshot must be taken before any new
        # walks are created: segments simulated after the insertion are
        # already correct for the new graph and must NOT be redirected.
        walk_count_before = self.walks.distinct_segment_count(source)
        affected_ids = self.walks.segment_ids_visiting(source)
        self.social_store.add_edge(source, target)
        report = UpdateReport(operation="add", edge=(source, target))
        for node in range(nodes_before, self.graph.num_nodes):
            report.steps_initialized += self._ensure_walks(node)
        degree = self.graph.out_degree(source)
        report.activation_probability = (
            1.0 - (1.0 - 1.0 / degree) ** walk_count_before
            if walk_count_before
            else 0.0
        )

        rng = self._rng
        redirect_probability = 1.0 / degree
        for segment_id in affected_ids:
            segment = self.walks.get(segment_id)
            handled = self._maybe_redirect(
                segment_id, segment, source, target, redirect_probability, report, rng
            )
            if not handled:
                if (
                    segment.end_reason == END_DANGLING
                    and segment.nodes[-1] == source
                ):
                    self._extend_dangling(segment_id, segment, report, rng)
                else:
                    report.segments_examined += 1

        self._finish_report(report)
        self.arrivals_processed += 1
        return report

    def _maybe_redirect(
        self,
        segment_id: int,
        segment: WalkSegment,
        source: int,
        target: int,
        redirect_probability: float,
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> bool:
        """Flip a 1/d coin per step taken at ``source``; reroute on first hit."""
        nodes = segment.nodes
        for position in range(len(nodes) - 1):
            if nodes[position] != source:
                continue
            if rng.random() >= redirect_probability:
                continue
            if self.reroute_policy == REROUTE_RESIMULATE:
                self._resimulate_from_source(segment_id, segment, report, rng)
            else:
                discarded = len(nodes) - (position + 1)
                continuation = simulate_reset_walk(
                    self.graph, target, self.reset_probability, rng
                )
                self.walks.replace_suffix(
                    segment_id, position, continuation.nodes, continuation.end_reason
                )
                report.steps_discarded += discarded
                report.steps_resimulated += len(continuation.nodes)
                report.segments_rerouted += 1
            return True
        return False

    def _extend_dangling(
        self,
        segment_id: int,
        segment: WalkSegment,
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> None:
        """Resume a segment stranded at a node that just gained an out-edge.

        The segment's final ε-coin already came up "continue"; the pending
        step is taken uniformly over the node's *current* out-edges, then
        the walk proceeds normally.
        """
        node = segment.nodes[-1]
        next_node = self.graph.random_out_neighbor(node, rng)
        continuation = simulate_reset_walk(
            self.graph, next_node, self.reset_probability, rng
        )
        self.walks.replace_suffix(
            segment_id,
            len(segment.nodes) - 1,
            continuation.nodes,
            continuation.end_reason,
        )
        report.steps_resimulated += len(continuation.nodes)
        report.segments_rerouted += 1

    def _resimulate_from_source(
        self,
        segment_id: int,
        segment: WalkSegment,
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> None:
        """§2.2's simplified policy: throw the segment away and re-walk."""
        report.steps_discarded += len(segment.nodes) - 1
        replacement = simulate_reset_walk(
            self.graph, segment.source, self.reset_probability, rng
        )
        self.walks.rebuild_segment(
            segment_id, replacement.nodes, replacement.end_reason
        )
        report.steps_resimulated += len(replacement.nodes) - 1
        report.segments_rerouted += 1

    # ------------------------------------------------------------------
    # Edge removal (Proposition 5's operation)
    # ------------------------------------------------------------------

    def remove_edge(self, source: int, target: int) -> UpdateReport:
        """Delete an edge; repair segments whose walk used it."""
        # Affected set must be computed against the *stored* segments, but
        # resimulation must use the post-removal graph — so mutate first.
        self.social_store.remove_edge(source, target)
        report = UpdateReport(operation="remove", edge=(source, target))
        rng = self._rng
        for segment_id in self.walks.segment_ids_visiting(source):
            segment = self.walks.get(segment_id)
            position = self._first_use_of_edge(segment, source, target)
            if position is None:
                report.segments_examined += 1
                continue
            if self.reroute_policy == REROUTE_RESIMULATE:
                self._resimulate_from_source(segment_id, segment, report, rng)
                continue
            discarded = len(segment.nodes) - (position + 1)
            # Re-take the step over the remaining edges; the ε-coin at
            # ``source`` already came up "continue", so it is NOT reflipped.
            if self.graph.out_degree(source) == 0:
                self.walks.replace_suffix(segment_id, position, [], END_DANGLING)
                resimulated = 0
            else:
                next_node = self.graph.random_out_neighbor(source, rng)
                continuation = simulate_reset_walk(
                    self.graph, next_node, self.reset_probability, rng
                )
                self.walks.replace_suffix(
                    segment_id, position, continuation.nodes, continuation.end_reason
                )
                resimulated = len(continuation.nodes)
            report.steps_discarded += discarded
            report.steps_resimulated += resimulated
            report.segments_rerouted += 1

        self._finish_report(report)
        self.removals_processed += 1
        return report

    @staticmethod
    def _first_use_of_edge(
        segment: WalkSegment, source: int, target: int
    ) -> Optional[int]:
        nodes = segment.nodes
        for position in range(len(nodes) - 1):
            if nodes[position] == source and nodes[position + 1] == target:
                return position
        return None

    # ------------------------------------------------------------------
    # Event-log replay
    # ------------------------------------------------------------------

    def apply(self, event: ArrivalEvent) -> UpdateReport:
        """Apply one :class:`ArrivalEvent` (add or remove)."""
        if event.kind == "add":
            return self.add_edge(event.source, event.target)
        return self.remove_edge(event.source, event.target)

    def _finish_report(self, report: UpdateReport) -> None:
        report.store_called = report.segments_rerouted > 0
        self.total_segments_rerouted += report.segments_rerouted
        self.total_steps_resimulated += report.steps_resimulated
        self.total_steps_discarded += report.steps_discarded

    @property
    def total_work(self) -> int:
        """Lifetime touched-step count (Theorem 4's summed quantity)."""
        return self.total_steps_resimulated + self.total_steps_discarded

    # ------------------------------------------------------------------
    # Estimates (available in O(1) per node at all times)
    # ------------------------------------------------------------------

    def pagerank(self, normalization: str = PAPER) -> np.ndarray:
        """Current PageRank estimates for all nodes."""
        return scores_from_store(
            self.walks,
            self.num_nodes,
            self.walks_per_node,
            self.reset_probability,
            normalization,
        )

    def pagerank_of(self, node: int) -> float:
        """Current estimate for one node — a counter read, no computation."""
        return self.walks.visit_count(node) / (
            self.num_nodes * self.walks_per_node / self.reset_probability
        )

    def top(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` nodes with the highest current estimates."""
        scores = self.pagerank()
        if k >= len(scores):
            order = np.argsort(-scores)
        else:
            partition = np.argpartition(-scores, k)[:k]
            order = partition[np.argsort(-scores[partition])]
        return [(int(node), float(scores[node])) for node in order[:k]]

    def __repr__(self) -> str:
        return (
            f"IncrementalPageRank(nodes={self.num_nodes}, "
            f"edges={self.graph.num_edges}, R={self.walks_per_node}, "
            f"eps={self.reset_probability}, arrivals={self.arrivals_processed})"
        )
