"""Deterministic shutdown for background-threaded components.

Several components own non-daemon background threads or worker pools — the
:class:`~repro.serve.batcher.RequestBatcher` thread pool, the
:class:`~repro.core.scheduler.StalenessScheduler` repair worker, the
:class:`~repro.serve.frontend.MultiProcessFrontend` worker processes.  All
of them already close deterministically via ``close()`` / context-manager
use, and well-behaved drivers do exactly that.  This module is the safety
net for the ones that don't: components register here on construction, and
a single process-exit hook closes whatever is still open, so worker
processes exit cleanly instead of hanging on a forgotten non-daemon thread
or spraying teardown noise into test output.

The hook ordering matters: plain :func:`atexit.register` callbacks run
*after* ``threading._shutdown`` has already blocked joining non-daemon
threads, which is too late to rescue an abandoned worker.  CPython ≥3.9
exposes ``threading._register_atexit`` — the mechanism
:mod:`concurrent.futures` itself uses — whose callbacks run *before* that
join.  We use it when present and fall back to :mod:`atexit` otherwise.

Registration holds only a weak reference: a collected component needs no
cleanup (its own finalizers handle the pool), and the registry must not
keep closed components alive.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from typing import Callable

__all__ = ["register_for_shutdown", "shutdown_all"]

class _Registration(weakref.ref):
    """A weak component reference carrying its close-method name."""

    __slots__ = ("close_name",)


# reentrant: a weakref death callback can fire via GC inside our own
# critical sections, in the same thread
_lock = threading.RLock()
#: Live registrations: id -> weakref (with close-method name) to component.
_registered: dict[int, _Registration] = {}
_hook_installed = False


def _install_hook() -> None:
    global _hook_installed
    if _hook_installed:
        return
    _hook_installed = True
    register = getattr(threading, "_register_atexit", None)
    if register is not None:
        register(shutdown_all)
    else:  # pragma: no cover - CPython < 3.9 fallback
        atexit.register(shutdown_all)


def register_for_shutdown(component: object, close: str = "close") -> None:
    """Close ``component`` at process exit if it is still alive and open.

    ``close`` names the zero-argument shutdown method (it must be
    idempotent — every registrant here already is).  Holding only a weak
    reference, registration neither delays collection nor requires
    explicit deregistration: closing a component yourself (the normal
    path) simply makes the exit-time call a no-op.
    """
    key = id(component)

    def _expired(ref: _Registration) -> None:
        # collected components need no exit-time close; drop the entry so
        # the registry stays bounded by *live* components
        with _lock:
            if _registered.get(key) is ref:
                del _registered[key]

    with _lock:
        _install_hook()
        ref = _Registration(component, _expired)
        ref.close_name = close
        _registered[key] = ref


def shutdown_all() -> None:
    """Close every still-alive registrant (exit hook; safe to call early)."""
    with _lock:
        refs = list(_registered.values())
        _registered.clear()
    for ref in refs:
        component = ref()
        if component is None:
            continue
        closer: Callable[[], None] | None = getattr(
            component, getattr(ref, "close_name", "close"), None
        )
        if closer is None:
            continue
        try:
            closer()
        except Exception:  # noqa: BLE001 - exit path must not raise
            pass
