#!/usr/bin/env python
"""The query-serving layer: cached, batched who-to-follow at read time.

The incremental engine keeps the walk index always fresh; this demo shows
the read path built on top of it (``repro.serve``):

1. a top-k query answered by a stitched walk, then answered again from
   the seed-keyed result cache (same ranking, ~1000x faster);
2. an ``apply_batch`` ingestion slice invalidating exactly the cached
   results whose walks read a touched node — served answers always match
   a cache-free recompute (checked live below);
3. a Zipf-distributed query storm driven through the RequestBatcher's
   worker pool, with duplicate coalescing and queue-depth load shedding.

Run:  python examples/serving.py [--nodes 1200] [--edges 14400]
"""

from __future__ import annotations

import argparse
import time

from repro.core.incremental import IncrementalPageRank
from repro.core.query_kernel import QueryKernel
from repro.serve import (
    QueryEngine,
    QueryRequest,
    RequestBatcher,
    zipf_seed_sequence,
)
from repro.workloads.twitter_like import twitter_like_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1200)
    parser.add_argument("--edges", type=int, default=14_400)
    parser.add_argument("--walks", type=int, default=5)
    parser.add_argument("--eps", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--length", type=int, default=1200, help="walk length")
    parser.add_argument("--queries", type=int, default=800)
    parser.add_argument("--pool", type=int, default=100, help="active users")
    args = parser.parse_args()

    stream = twitter_like_stream(args.nodes, args.edges, rng=args.seed)
    cut = int(len(stream) * 0.7)
    engine = IncrementalPageRank.from_graph(
        stream.snapshot_at(cut),
        reset_probability=args.eps,
        walks_per_node=args.walks,
        rng=args.seed,
    )
    service = QueryEngine(engine, rng_seed=7)
    print(f"store: {engine!r}\n")

    # -- 1. one query, cold then cached --------------------------------
    seed = 42
    started = time.perf_counter()
    cold = service.top_k(seed, 10, length=args.length)
    cold_ms = (time.perf_counter() - started) * 1e3
    started = time.perf_counter()
    warm = service.top_k(seed, 10, length=args.length)
    warm_ms = (time.perf_counter() - started) * 1e3
    assert warm.ranking == cold.ranking
    print(f"top-10 for user {seed}: {[node for node, _ in cold.ranking]}")
    print(
        f"cold query {cold_ms:.2f} ms ({cold.fetches} store fetches) -> "
        f"cache hit {warm_ms:.4f} ms (x{cold_ms / max(warm_ms, 1e-6):.0f})\n"
    )

    # -- 2. ingestion invalidates exactly what it touched --------------
    cached_before = len(service.results)
    for burst in range(3):
        for query_seed in zipf_seed_sequence(60, args.pool, rng=burst):
            service.top_k(query_seed, 10, length=args.length)
    print(f"cached results after query bursts: {len(service.results)}")
    window = stream.suffix(cut)
    report = engine.apply_batch(window[:400])
    print(
        f"apply_batch: {report.num_events} events touched "
        f"{len(report.dirty_nodes)} nodes -> epoch {engine.epoch}, "
        f"{service.results.invalidations} results invalidated, "
        f"{len(service.results)} still valid"
    )
    reference = QueryKernel(engine.pagerank_store, reset_probability=args.eps)
    served = service.top_k(seed, 10, length=args.length)
    recomputed = reference.batch_top_k(
        [seed],
        10,
        length=args.length,
        exclude_friends=True,
        rngs=[service.query_rng(seed, args.length)],
    )[0]
    assert served.ranking == recomputed.ranking
    print("served ranking == cache-free recompute on the updated store\n")

    # -- 3. a Zipf query storm through the batcher ---------------------
    requests = [
        QueryRequest(seed=s, k=10, length=args.length)
        for s in zipf_seed_sequence(args.queries, args.pool, rng=9)
    ]
    with RequestBatcher(service, max_workers=4, max_queue_depth=4096) as batcher:
        started = time.perf_counter()
        results = batcher.run(requests)
        seconds = time.perf_counter() - started
    answered = sum(1 for r in results if r is not None)
    print(
        f"storm: {answered}/{len(requests)} answered in {seconds:.2f}s "
        f"({answered / seconds:,.0f} qps)"
    )
    print(service.stats.render())

    # -- 4. overload: admission control sheds, never queues unboundedly -
    shed_service = QueryEngine(engine, rng_seed=8)
    with RequestBatcher(
        shed_service, max_workers=2, max_queue_depth=16
    ) as batcher:
        results = batcher.run(
            [QueryRequest(seed=s, k=10, length=args.length) for s in range(200)]
        )
    shed = sum(1 for r in results if r is None)
    print(
        f"\noverload: 200 distinct seeds at queue depth 16 -> "
        f"{200 - shed} served, {shed} shed "
        f"({shed_service.stats.shed_rate:.0%} shed rate)"
    )


if __name__ == "__main__":
    main()
