"""Reverse local-push + bidirectional PPR-to-target: unit, differential,
and serve-layer coverage (DESIGN.md §14).

The load-bearing properties:

* the push maintains the residual invariant ``pi_s(t) = p[s] + sum_v
  pi_s(v) r[v]`` and therefore lands within ``r_max`` of brute-force
  power iteration — exactly, when ``r_max`` is driven to fp-zero;
* threshold decisions (``estimate >= delta``) match the baseline on every
  backend (object / columnar / sharded), because the push reads only the
  shared graph and the forward walks run on the kernel's normative
  streams;
* the serve stack carries the query class end-to-end: result caching with
  footprint invalidation, batched execution identical to single-query
  execution, and bounded-staleness deferral flushing before the read.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_iteration import exact_personalized_pagerank
from repro.core.incremental import IncrementalPageRank
from repro.core.query_kernel import QueryKernel
from repro.core.reverse_push import (
    BidirectionalKernel,
    ReversePushEngine,
    default_r_max,
    default_walk_length,
)
from repro.errors import ConfigurationError, NodeNotFoundError
from repro.graph.digraph import DynamicDiGraph
from repro.obs import MetricsRegistry, Tracer
from repro.serve.batcher import QueryRequest, RequestBatcher
from repro.serve.engine import QueryEngine
from repro.workloads.twitter_like import twitter_like_graph

BACKENDS = ["object", "columnar", "sharded:3"]


def _engine(graph, backend="columnar", *, rng=11, walks=3):
    return IncrementalPageRank.from_graph(
        graph.copy(), walks_per_node=walks, rng=rng, store_backend=backend
    )


# ----------------------------------------------------------------------
# ReversePushEngine unit behavior
# ----------------------------------------------------------------------


def test_push_validation():
    graph = twitter_like_graph(20, 60, rng=0)
    with pytest.raises(ConfigurationError):
        ReversePushEngine(graph, reset_probability=0.0)
    with pytest.raises(ConfigurationError):
        ReversePushEngine(graph, reset_probability=1.0)
    engine = ReversePushEngine(graph)
    with pytest.raises(NodeNotFoundError):
        engine.push(20, r_max=0.1)
    with pytest.raises(NodeNotFoundError):
        engine.push(-1, r_max=0.1)
    with pytest.raises(ConfigurationError):
        engine.push(0, r_max=0.0)


def test_default_sizing():
    assert default_r_max(0.01) == 0.005
    with pytest.raises(ConfigurationError):
        default_walk_length(0.0, 0.1, 0.2)
    # the floor keeps tiny budgets from degenerating
    assert default_walk_length(1.0, 1e-6, 0.2) == 64
    assert default_walk_length(1e-4, 0.05, 0.2) == 20_000


def test_push_residual_invariant():
    """p[s] + sum_v pi_s(v) r[v] reconstructs pi_s(t) exactly, at every
    tolerance — the invariant every push step preserves."""
    graph = twitter_like_graph(40, 240, rng=2)
    exact = exact_personalized_pagerank(graph, list(range(40)))
    engine = ReversePushEngine(graph)
    target = 4
    for r_max in (0.5, 0.05, 0.005):
        push = engine.push(target, r_max=r_max)
        assert push.residuals.max() < r_max
        reconstructed = push.estimates + exact @ push.residuals
        np.testing.assert_allclose(
            reconstructed, exact[:, target], atol=1e-10
        )


def test_push_deterministic_and_touched_sound():
    graph = twitter_like_graph(50, 300, rng=3)
    engine = ReversePushEngine(graph)
    first = engine.push(7, r_max=0.01)
    second = engine.push(7, r_max=0.01)
    assert np.array_equal(first.estimates, second.estimates)
    assert np.array_equal(first.residuals, second.residuals)
    assert first.pushes == second.pushes and first.rounds == second.rounds
    # touched covers every node carrying estimate or residual mass
    carrying = set(np.flatnonzero(first.estimates != 0.0).tolist())
    carrying |= set(np.flatnonzero(first.residuals != 0.0).tolist())
    assert carrying <= first.touched
    assert 7 in first.touched


def test_forward_contribution_requires_resets():
    graph = twitter_like_graph(20, 80, rng=4)
    kernel = BidirectionalKernel(graph)
    push = kernel.prepare_target(3, r_max=0.05)
    assert kernel.forward_contribution(push, {3: 10}, 0) == 0.0


# ----------------------------------------------------------------------
# Differential vs power iteration, every backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_exact_threshold_decisions_match_power_iteration(backend):
    """Acceptance criterion: on a <=200-node graph, reverse-only mode
    reproduces the baseline's threshold decisions exactly."""
    graph = twitter_like_graph(150, 1200, rng=5)
    engine = _engine(graph, backend)
    kernel = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    seeds = list(range(150))
    exact = exact_personalized_pagerank(
        graph, seeds, reset_probability=engine.reset_probability
    )
    delta = 10 / 150
    for target in (0, 17, 149):
        answers = kernel.batch_ppr_to_target(
            seeds, target, delta, r_max=1e-12, walk_length=0
        )
        estimates = np.array([answer.estimate for answer in answers])
        np.testing.assert_allclose(estimates, exact[:, target], atol=1e-9)
        assert [answer.above_delta for answer in answers] == [
            bool(value >= delta) for value in exact[:, target]
        ]


def test_bidirectional_beats_reverse_only_budget():
    """With a loose push (cheap) the forward walks close most of the
    residual gap: the combined error stays well inside r_max."""
    graph = twitter_like_graph(120, 1000, rng=6)
    engine = _engine(graph)
    kernel = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    seeds = list(range(120))
    exact = exact_personalized_pagerank(
        graph, seeds, reset_probability=engine.reset_probability
    )
    target, r_max = 11, 0.01
    answers = kernel.batch_ppr_to_target(
        seeds, target, 0.02, r_max=r_max, walk_length=1500, rng_seed=9
    )
    errors = np.abs(
        np.array([answer.estimate for answer in answers]) - exact[:, target]
    )
    assert errors.max() <= r_max
    # and the forward half is doing real work: reverse-only alone leaves a
    # strictly larger worst-case gap on this graph
    reverse_only = np.abs(
        np.array([answer.reverse_estimate for answer in answers])
        - exact[:, target]
    )
    assert errors.mean() < reverse_only.mean()


def test_batch_composition_independence():
    graph = twitter_like_graph(60, 400, rng=7)
    engine = _engine(graph)
    kernel = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    batched = kernel.batch_ppr_to_target(
        [3, 8, 21], 5, 0.02, r_max=0.01, walk_length=600, rng_seed=2
    )
    for seed, expected in zip([3, 8, 21], batched):
        alone = kernel.batch_ppr_to_target(
            [seed], 5, 0.02, r_max=0.01, walk_length=600, rng_seed=2
        )[0]
        assert alone.estimate == expected.estimate
        assert alone.footprint == expected.footprint


def test_kernel_observability_span_and_counter():
    graph = twitter_like_graph(30, 150, rng=8)
    engine = _engine(graph)
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    kernel = QueryKernel(
        engine.pagerank_store,
        reset_probability=engine.reset_probability,
        registry=registry,
        tracer=tracer,
    )
    kernel.batch_ppr_to_target([1, 2], 4, 0.05, r_max=0.01, walk_length=200)
    counter = registry.counter("repro_kernel_reverse_push_total")
    assert counter.total() == 1
    names = [span.name for span in tracer.spans()]
    assert "kernel.reverse_push" in names
    assert "kernel.batch" in names  # the forward half, nested


# ----------------------------------------------------------------------
# Serve layer: caching, batching, staleness
# ----------------------------------------------------------------------


def test_query_engine_ppr_to_target_caches_and_invalidates():
    graph = twitter_like_graph(50, 350, rng=9)
    engine = _engine(graph)
    qe = QueryEngine(engine, rng_seed=4)
    first = qe.ppr_to_target(2, 6, 0.02)
    assert qe.ppr_to_target(2, 6, 0.02) is first  # cache hit
    # an update touching the footprint drops the entry and changes state
    if engine.graph.has_edge(6, 2):
        engine.remove_edge(6, 2)
    else:
        engine.add_edge(6, 2)
    recomputed = qe.ppr_to_target(2, 6, 0.02)
    assert recomputed is not first
    # the recompute equals a cache-free engine over the same store state
    control = QueryEngine(engine, rng_seed=4, cache_results=False)
    assert control.ppr_to_target(2, 6, 0.02).estimate == recomputed.estimate
    control.detach()
    qe.detach()


def test_query_engine_batch_matches_single():
    graph = twitter_like_graph(50, 350, rng=10)
    engine = _engine(graph)
    qe = QueryEngine(engine, rng_seed=6, cache_results=False)
    requests = [
        QueryRequest(kind="pprt", seed=s, target=8, delta=0.02)
        for s in (1, 4, 9, 4)
    ] + [QueryRequest(kind="ppr", seed=1, length=100)]
    answers = qe.run_batch(requests)
    for request, answer in zip(requests[:4], answers[:4]):
        single = qe.ppr_to_target(request.seed, 8, 0.02)
        assert single.estimate == answer.estimate
    assert answers[4].seed == 1  # the walk request rode along
    qe.detach()


def test_query_engine_scalar_fallback_matches_itself():
    graph = twitter_like_graph(40, 250, rng=12)
    engine = _engine(graph)
    qe = QueryEngine(engine, rng_seed=2, use_kernel=False, cache_results=False)
    assert qe.kernel is None
    first = qe.ppr_to_target(3, 7, 0.02)
    second = qe.ppr_to_target(3, 7, 0.02)
    assert first.estimate == second.estimate
    batch = qe.run_batch(
        [QueryRequest(kind="pprt", seed=3, target=7, delta=0.02)]
    )[0]
    assert batch.estimate == first.estimate
    qe.detach()


def test_batcher_coalesces_and_dispatches_pprt():
    graph = twitter_like_graph(40, 250, rng=13)
    engine = _engine(graph)
    qe = QueryEngine(engine, rng_seed=1)
    with RequestBatcher(qe, max_workers=2) as batcher:
        request = QueryRequest(kind="pprt", seed=2, target=5, delta=0.03)
        results = batcher.run([request, request])
        assert results[0] is results[1]
        via_submit = batcher.submit(request).result()
        assert via_submit is results[0]  # served from the result cache
    qe.detach()


def test_request_validation():
    with pytest.raises(ConfigurationError):
        QueryRequest(kind="pprt", seed=1)  # no target/delta
    with pytest.raises(ConfigurationError):
        QueryRequest(kind="pprt", seed=1, target=2, delta=0.0)
    with pytest.raises(ConfigurationError):
        QueryRequest(kind="nope", seed=1)


def test_bounded_staleness_flushes_before_target_read():
    """Deferred mutations touching the *target* (not just the seed) are
    repaired before a ppr_to_target read, and the answer equals the eager
    engine's over the same mutation history."""
    graph = twitter_like_graph(60, 400, rng=14)
    eager_engine = _engine(graph, rng=21)
    bounded_engine = _engine(graph, rng=21)
    eager = QueryEngine(eager_engine, rng_seed=5)
    bounded = QueryEngine(bounded_engine, rng_seed=5, freshness="bounded")
    mutations = [("add", 17, 3), ("add", 3, 44), ("remove", 17, 3)]
    for kind, u, v in mutations:
        if kind == "add":
            if not eager_engine.graph.has_edge(u, v):
                eager_engine.add_edge(u, v)
            bounded.scheduler.add_edge(u, v)
        else:
            if eager_engine.graph.has_edge(u, v):
                eager_engine.remove_edge(u, v)
            bounded.scheduler.remove_edge(u, v)
    assert bounded.scheduler.pending_events > 0
    # seed 0 is clean; target 17 has pending repairs — the read must flush
    answer = bounded.ppr_to_target(0, 17, 0.02)
    assert bounded.scheduler.pending_events == 0
    assert answer.estimate == eager.ppr_to_target(0, 17, 0.02).estimate
    eager.detach()
    bounded.detach()


def test_interleaved_updates_keep_answers_fresh():
    """Alternate mutations and queries; after every epoch the served
    answer equals a cache-free engine's on the current store."""
    graph = twitter_like_graph(40, 250, rng=15)
    engine = _engine(graph, rng=22)
    qe = QueryEngine(engine, rng_seed=8)
    control = QueryEngine(engine, rng_seed=8, cache_results=False)
    driver = np.random.default_rng(0)
    for _ in range(6):
        served = qe.ppr_to_target(1, 9, 0.02)
        fresh = control.ppr_to_target(1, 9, 0.02)
        assert served.estimate == fresh.estimate
        u, v = int(driver.integers(40)), int(driver.integers(40))
        if u != v:
            if engine.graph.has_edge(u, v):
                engine.remove_edge(u, v)
            else:
                engine.add_edge(u, v)
    qe.detach()
    control.detach()


def test_engine_level_ttl_expiry_with_fake_clock():
    """Satellite 1 regression: TTL expiry through QueryEngine._served uses
    the injected monotonic clock — no sleeping, no wall-clock reads."""
    graph = twitter_like_graph(30, 150, rng=16)
    engine = _engine(graph)
    now = [0.0]
    qe = QueryEngine(engine, rng_seed=3, result_ttl=10.0, clock=lambda: now[0])
    first = qe.ppr_to_target(2, 5, 0.05)
    now[0] = 9.0
    assert qe.ppr_to_target(2, 5, 0.05) is first  # within TTL: cached
    now[0] = 10.0
    expired = qe.ppr_to_target(2, 5, 0.05)
    assert expired is not first  # expired exactly at ttl, recomputed
    assert expired.estimate == first.estimate  # same store, same stream
    assert qe.results.expirations == 1
    qe.detach()
