"""Seed-user selection helpers.

The paper's personalized experiments repeatedly select "100 random users
who had a reasonable number of friends (between 20 and 30)" (§4.1); this
module centralizes that protocol.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["users_with_friend_count"]


def users_with_friend_count(
    graph: DynamicDiGraph,
    *,
    minimum: int = 20,
    maximum: int = 30,
    count: Optional[int] = 100,
    rng: RngLike = None,
) -> list[int]:
    """Random users whose friend (out-degree) count lies in a band.

    Returns up to ``count`` users (all matching users when ``count`` is
    None or exceeds the population), sampled without replacement.
    """
    if minimum < 0 or maximum < minimum:
        raise ConfigurationError(
            f"invalid friend-count band [{minimum}, {maximum}]"
        )
    eligible = [
        node
        for node in graph.nodes()
        if minimum <= graph.out_degree(node) <= maximum
    ]
    if count is None or count >= len(eligible):
        return eligible
    generator = ensure_rng(rng)
    chosen = generator.choice(len(eligible), size=count, replace=False)
    return [eligible[int(index)] for index in sorted(chosen)]
