"""Arrival processes and timestamped streams (§2.2's evolution models)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.graph.arrival import (
    AdversarialArrival,
    ArrivalEvent,
    DirichletArrival,
    RandomPermutationArrival,
    TimestampedStream,
    apply_events,
)
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import example1_adversarial_gadget


class TestArrivalEvent:
    def test_kinds(self):
        assert ArrivalEvent("add", 0, 1).edge == (0, 1)
        assert ArrivalEvent("remove", 2, 3).kind == "remove"
        with pytest.raises(ConfigurationError):
            ArrivalEvent("mutate", 0, 1)


class TestRandomPermutation:
    def test_yields_each_edge_once_with_times(self, random_graph):
        arrival = RandomPermutationArrival.of_graph(random_graph, rng=0)
        events = list(arrival)
        assert len(events) == random_graph.num_edges
        assert sorted(e.edge for e in events) == sorted(random_graph.edges())
        assert [e.time for e in events] == list(range(1, len(events) + 1))
        assert all(e.kind == "add" for e in events)

    def test_order_is_random(self, random_graph):
        order_a = [e.edge for e in RandomPermutationArrival.of_graph(random_graph, rng=1)]
        order_b = [e.edge for e in RandomPermutationArrival.of_graph(random_graph, rng=2)]
        assert order_a != order_b
        assert sorted(order_a) == sorted(order_b)

    def test_uniform_position_distribution(self):
        """Each edge's arrival position must be uniform — the assumption
        Lemma 3 rests on."""
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        first_counts = {edge: 0 for edge in edges}
        for seed in range(2000):
            arrival = RandomPermutationArrival(edges, rng=seed)
            first_counts[next(iter(arrival)).edge] += 1
        for count in first_counts.values():
            assert 400 < count < 600  # 500 ± 20%

    def test_num_nodes_inferred(self):
        arrival = RandomPermutationArrival([(0, 9)])
        assert arrival.num_nodes == 10


class TestDirichlet:
    def test_produces_requested_edges(self):
        arrival = DirichletArrival(50, 300, rng=3)
        events = list(arrival)
        assert len(events) == 300
        assert len({e.edge for e in events}) == 300  # no duplicates
        assert all(e.source != e.target for e in events)

    def test_rich_get_richer_sources(self):
        """Sources are drawn ∝ outdeg+1, so the out-degree distribution
        must be more skewed than uniform assignment would give."""
        arrival = DirichletArrival(100, 2000, rng=4)
        graph = DynamicDiGraph(100, allow_self_loops=False)
        apply_events(graph, arrival)
        out = graph.out_degree_array()
        assert out.max() > 2.5 * out.mean()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DirichletArrival(0, 10)
        with pytest.raises(ConfigurationError):
            DirichletArrival(10, -1)


class TestAdversarial:
    def test_fixed_order_preserved(self):
        sequence = [(0, 1), (2, 3), (1, 2)]
        arrival = AdversarialArrival(sequence)
        assert [e.edge for e in arrival] == sequence
        assert [e.time for e in arrival] == [1, 2, 3]

    def test_gadget_then_killer(self):
        gadget, killer, _ = example1_adversarial_gadget(5)
        arrival = AdversarialArrival.gadget_then_killer(gadget, killer, rng=5)
        events = list(arrival)
        assert events[-1].edge == killer
        assert len(events) == gadget.num_edges + 1
        assert sorted(e.edge for e in events[:-1]) == sorted(gadget.edges())


class TestTimestampedStream:
    def test_snapshot_prefix_suffix(self):
        events = [ArrivalEvent("add", u, v) for u, v in [(0, 1), (1, 2), (2, 0), (0, 2)]]
        stream = TimestampedStream(3, events)
        assert len(stream) == 4
        assert stream[1].edge == (1, 2)
        snap = stream.snapshot_at(2)
        assert snap.num_edges == 2
        assert snap.has_edge(0, 1)
        assert snap.has_edge(1, 2)
        assert not snap.has_edge(2, 0)
        assert [e.edge for e in stream.suffix(2)] == [(2, 0), (0, 2)]
        assert [e.edge for e in stream.prefix(2)] == [(0, 1), (1, 2)]

    def test_times_assigned_when_missing(self):
        stream = TimestampedStream(2, [ArrivalEvent("add", 0, 1)])
        assert stream[0].time == 1

    def test_from_process_round_trip(self, random_graph):
        stream = TimestampedStream.from_process(
            RandomPermutationArrival.of_graph(random_graph, rng=6)
        )
        final = stream.snapshot_at(len(stream))
        assert sorted(final.edges()) == sorted(random_graph.edges())

    def test_remove_events_replay(self):
        events = [
            ArrivalEvent("add", 0, 1),
            ArrivalEvent("add", 1, 2),
            ArrivalEvent("remove", 0, 1),
        ]
        stream = TimestampedStream(3, events)
        final = stream.snapshot_at(3)
        assert not final.has_edge(0, 1)
        assert final.has_edge(1, 2)


class TestApplyEvents:
    def test_grows_nodes_as_needed(self):
        graph = DynamicDiGraph(1)
        apply_events(graph, [ArrivalEvent("add", 0, 7)])
        assert graph.num_nodes == 8
        assert graph.has_edge(0, 7)
