"""Tracing and stage profiling: spans, propagation, levels, overhead gates.

The integration test at the bottom is the ISSUE-7 span acceptance: a
traced Zipf run through the RequestBatcher must export JSONL from which
the batcher -> kernel -> store-fetch request path reconstructs.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.incremental import IncrementalPageRank
from repro.errors import ConfigurationError
from repro.graph.generators import directed_preferential_attachment
from repro.obs import (
    LEVEL_OFF,
    LEVEL_PROFILE,
    LEVEL_TRACE,
    MetricsRegistry,
    RingSink,
    StageProfiler,
    Tracer,
    current_span,
    get_level,
    set_level,
)
from repro.obs.profile import _parse_level
from repro.serve import QueryEngine, QueryRequest, RequestBatcher
from repro.serve.traffic import zipf_seed_sequence


@pytest.fixture
def level_guard():
    """Restore the global REPRO_OBS level after the test."""
    level = get_level()
    yield
    set_level(level)


# ----------------------------------------------------------------------
# Levels
# ----------------------------------------------------------------------


class TestLevels:
    def test_default_level_is_off(self):
        assert get_level() == LEVEL_OFF

    def test_set_level_returns_previous(self, level_guard):
        assert set_level(LEVEL_TRACE) == LEVEL_OFF
        assert get_level() == LEVEL_TRACE
        assert set_level(LEVEL_OFF) == LEVEL_TRACE

    def test_set_level_validates(self):
        with pytest.raises(ConfigurationError):
            set_level(3)
        with pytest.raises(ConfigurationError):
            set_level(-1)

    def test_parse_level(self):
        assert _parse_level(None) == LEVEL_OFF
        assert _parse_level("") == LEVEL_OFF
        assert _parse_level("1") == LEVEL_PROFILE
        assert _parse_level("2") == LEVEL_TRACE
        with pytest.raises(ConfigurationError):
            _parse_level("verbose")
        with pytest.raises(ConfigurationError):
            _parse_level("7")


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer()  # level is OFF by default
        assert not tracer.enabled
        with tracer.span("kernel.batch", walks=3) as span:
            assert span is None
        assert tracer.spans() == []
        assert tracer.current() is None

    def test_nesting_assigns_parent_and_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.span("serve.drain", requests=4) as outer:
            assert current_span() is outer
            with tracer.span("kernel.batch") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert current_span() is None
        names = [s.name for s in tracer.spans()]
        assert names == ["kernel.batch", "serve.drain"]  # finish order
        assert all(s.duration >= 0.0 for s in tracer.spans())

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_explicit_parent_crosses_threads(self):
        """The executor-boundary contract: capture current(), pass parent=."""
        tracer = Tracer(enabled=True)
        with tracer.span("serve.drain") as drain:
            parent = tracer.current()

            def worker():
                with tracer.span("serve.chunk", parent=parent) as chunk:
                    assert chunk.parent_id == drain.span_id
                    assert chunk.trace_id == drain.trace_id

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()

    def test_attributes_and_exception_safety(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("kernel.batch", walks=7):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes == {"walks": 7}
        assert current_span() is None  # context restored despite the raise

    def test_leaf_span_fast_path(self):
        tracer = Tracer(enabled=True)
        with tracer.span("kernel.batch") as batch:
            leaf = tracer.start_leaf("store.fetch", node=3)
            assert leaf.parent_id == batch.span_id
            assert current_span() is batch  # leaf never owns the context
            tracer.finish_leaf(leaf)
        assert [s.name for s in tracer.spans()] == [
            "store.fetch",
            "kernel.batch",
        ]
        assert tracer.start_leaf("x") is None or tracer.enabled
        tracer_off = Tracer()
        assert tracer_off.start_leaf("store.fetch") is None
        tracer_off.finish_leaf(None)  # no-op

    def test_ring_sink_evicts_oldest_and_counts_drops(self):
        sink = RingSink(capacity=2)
        tracer = Tracer(sink=sink, enabled=True)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in sink.spans()] == ["b", "c"]
        assert sink.dropped == 1
        assert len(sink) == 2
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("serve.drain", requests=2):
            with tracer.span("kernel.batch"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["name"] for line in lines} == {
            "serve.drain",
            "kernel.batch",
        }
        for line in lines:
            assert set(line) == {
                "name",
                "trace_id",
                "span_id",
                "parent_id",
                "start",
                "duration",
                "thread",
                "attributes",
            }

    def test_level_gates_default_tracer(self, level_guard):
        tracer = Tracer()
        assert not tracer.enabled
        set_level(LEVEL_TRACE)
        assert tracer.enabled
        set_level(LEVEL_PROFILE)  # profiling only: spans stay off
        assert not tracer.enabled


# ----------------------------------------------------------------------
# Stage profiling
# ----------------------------------------------------------------------


class TestStageProfiler:
    def test_disabled_by_default_records_only_when_asked(self, level_guard):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry)
        assert not profiler.enabled
        set_level(LEVEL_PROFILE)
        assert profiler.enabled
        profiler.record("reduce", 0.004)
        assert profiler.stage_seconds.count(stage="reduce") == 1

    def test_stage_context_manager(self, level_guard):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry, metric="repro_core_stage_seconds")
        with profiler.stage("scan"):
            pass
        assert profiler.stage_seconds.count(stage="scan") == 0  # disabled
        set_level(LEVEL_PROFILE)
        with profiler.stage("scan"):
            pass
        assert profiler.stage_seconds.count(stage="scan") == 1

    def test_forced_enablement_ignores_level(self):
        registry = MetricsRegistry()
        profiler = StageProfiler(registry, enabled=True)
        assert profiler.enabled  # even though the global level is OFF
        off = StageProfiler(registry, enabled=False)
        assert not off.enabled


# ----------------------------------------------------------------------
# Integration: the request path reconstructs from exported spans
# ----------------------------------------------------------------------


def _children(spans):
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span["parent_id"], []).append(span)
    return by_parent


class TestRequestPathReconstruction:
    def test_zipf_drain_exports_batcher_kernel_store_path(
        self, tmp_path, level_guard
    ):
        set_level(LEVEL_TRACE)
        graph = directed_preferential_attachment(150, edges_per_node=3, rng=5)
        registry = MetricsRegistry()
        engine = IncrementalPageRank.from_graph(
            graph, walks_per_node=4, rng=1, registry=registry
        )
        tracer = Tracer(capacity=16_384)
        service = QueryEngine(
            engine, rng_seed=7, registry=registry, tracer=tracer
        )
        try:
            with RequestBatcher(service, max_workers=2) as batcher:
                batcher.run(
                    [
                        QueryRequest(seed=s, k=5, length=300)
                        for s in zipf_seed_sequence(40, 50, rng=3)
                    ]
                )
        finally:
            service.detach()

        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) > 0
        spans = [json.loads(line) for line in path.read_text().splitlines()]
        by_id = {span["span_id"]: span for span in spans}
        children = _children(spans)

        fetches = [s for s in spans if s["name"] == "store.fetch"]
        assert fetches, "kernel never emitted store.fetch spans"
        # every fetch chains fetch <- kernel.batch <- serve.chunk <-
        # serve.drain within ONE trace — across the worker-pool boundary
        for fetch in fetches:
            batch = by_id[fetch["parent_id"]]
            assert batch["name"] == "kernel.batch"
            chunk = by_id[batch["parent_id"]]
            assert chunk["name"] == "serve.chunk"
            drain = by_id[chunk["parent_id"]]
            assert drain["name"] == "serve.drain"
            assert drain["parent_id"] is None
            assert (
                fetch["trace_id"]
                == batch["trace_id"]
                == chunk["trace_id"]
                == drain["trace_id"]
            )
        # the drain fanned its chunks out to pool threads, not inline
        drains = [s for s in spans if s["name"] == "serve.drain"]
        assert len(drains) == 1
        chunk_threads = {
            chunk["thread"]
            for chunk in children.get(drains[0]["span_id"], [])
            if chunk["name"] == "serve.chunk"
        }
        assert chunk_threads and all(
            thread != drains[0]["thread"] for thread in chunk_threads
        )

    def test_single_submit_path_wraps_requests(self, level_guard):
        set_level(LEVEL_TRACE)
        graph = directed_preferential_attachment(100, edges_per_node=3, rng=5)
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=4, rng=1)
        tracer = Tracer()
        service = QueryEngine(engine, rng_seed=7, tracer=tracer)
        try:
            with RequestBatcher(service, max_workers=2) as batcher:
                future = batcher.submit(QueryRequest(seed=3, k=5, length=200))
                future.result()
        finally:
            service.detach()
        requests = [s for s in tracer.spans() if s.name == "serve.request"]
        assert len(requests) == 1
        assert requests[0].attributes == {"kind": "topk", "seed": 3}
        batches = [s for s in tracer.spans() if s.name == "kernel.batch"]
        assert batches and batches[0].parent_id == requests[0].span_id

    def test_scheduler_flush_span_carries_reason(self, level_guard):
        set_level(LEVEL_TRACE)
        graph = directed_preferential_attachment(80, edges_per_node=3, rng=5)
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=4, rng=1)
        tracer = Tracer()
        service = QueryEngine(
            engine,
            rng_seed=7,
            tracer=tracer,
            freshness="bounded",
            staleness_budget=1e9,  # only the read repairs, never the budget
        )
        try:
            service.scheduler.add_edge(0, 79)
            service.ppr(0, 100)  # repair-on-read flush
        finally:
            service.detach()
        flushes = [s for s in tracer.spans() if s.name == "scheduler.flush"]
        assert len(flushes) == 1
        assert flushes[0].attributes == {"reason": "read", "events": 1}
