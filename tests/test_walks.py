"""Unit tests for WalkSegment / WalkStore and the scalar walker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    SIDE_AUTHORITY,
    SIDE_HUB,
    WalkSegment,
    WalkStore,
    simulate_reset_walk,
)
from repro.errors import WalkStateError
from repro.graph.digraph import DynamicDiGraph


class TestWalkSegment:
    def test_basics(self):
        seg = WalkSegment([3, 1, 4, 1], END_RESET)
        assert seg.source == 3
        assert seg.last == 1
        assert len(seg) == 4

    def test_empty_rejected(self):
        with pytest.raises(WalkStateError):
            WalkSegment([], END_RESET)

    def test_bad_reason_rejected(self):
        with pytest.raises(WalkStateError):
            WalkSegment([0], 7)

    def test_step_positions_exclude_last(self):
        seg = WalkSegment([1, 2, 1, 3, 1], END_RESET)
        # node 1 appears at positions 0, 2, 4; position 4 is the end (no step)
        assert seg.step_positions_at(1) == [0, 2]

    def test_sides(self):
        forward = WalkSegment([0, 1, 2], END_RESET, parity_offset=SIDE_HUB)
        assert [forward.side_of(p) for p in range(3)] == [
            SIDE_HUB,
            SIDE_AUTHORITY,
            SIDE_HUB,
        ]
        backward = WalkSegment([0, 1, 2], END_RESET, parity_offset=SIDE_AUTHORITY)
        assert backward.side_of(0) == SIDE_AUTHORITY


class TestWalkStore:
    def test_add_and_counters(self):
        store = WalkStore(4)
        sid = store.add_segment(WalkSegment([0, 1, 2, 1], END_RESET))
        assert store.visit_count(1) == 2
        assert store.distinct_segment_count(1) == 1
        assert store.visits_of(1) == {sid: 2}
        assert store.total_visits == 4
        store.check_invariants()

    def test_multiple_segments_share_index(self):
        store = WalkStore(3)
        a = store.add_segment(WalkSegment([0, 1], END_RESET))
        b = store.add_segment(WalkSegment([2, 1, 1], END_RESET))
        assert store.distinct_segment_count(1) == 2
        assert store.visit_count(1) == 3
        assert store.visits_of(1) == {a: 1, b: 2}
        assert store.segments_of[0] == [a]
        assert store.segments_of[2] == [b]
        store.check_invariants()

    def test_replace_suffix(self):
        store = WalkStore(5)
        sid = store.add_segment(WalkSegment([0, 1, 2, 3], END_RESET))
        store.replace_suffix(sid, 1, [4, 4], END_DANGLING)
        seg = store.get(sid)
        assert seg.nodes == [0, 1, 4, 4]
        assert seg.end_reason == END_DANGLING
        assert store.visit_count(2) == 0
        assert store.visit_count(3) == 0
        assert store.visit_count(4) == 2
        assert store.total_visits == 4
        store.check_invariants()

    def test_replace_suffix_to_empty(self):
        store = WalkStore(3)
        sid = store.add_segment(WalkSegment([0, 1, 2], END_RESET))
        store.replace_suffix(sid, 0, [], END_DANGLING)
        assert store.get(sid).nodes == [0]
        assert store.total_visits == 1
        store.check_invariants()

    def test_replace_suffix_bounds(self):
        store = WalkStore(2)
        sid = store.add_segment(WalkSegment([0, 1], END_RESET))
        with pytest.raises(WalkStateError):
            store.replace_suffix(sid, 2, [], END_RESET)
        with pytest.raises(WalkStateError):
            store.replace_suffix(sid, -1, [], END_RESET)

    def test_rebuild_segment(self):
        store = WalkStore(4)
        sid = store.add_segment(WalkSegment([1, 2, 3], END_RESET))
        store.rebuild_segment(sid, [1, 0], END_DANGLING)
        assert store.get(sid).nodes == [1, 0]
        assert store.visit_count(3) == 0
        store.check_invariants()

    def test_rebuild_must_keep_source(self):
        store = WalkStore(3)
        sid = store.add_segment(WalkSegment([1, 2], END_RESET))
        with pytest.raises(WalkStateError):
            store.rebuild_segment(sid, [0, 2], END_RESET)

    def test_ensure_node_grows(self):
        store = WalkStore(1)
        store.add_segment(WalkSegment([0, 6], END_RESET))  # auto-grows
        assert store.num_nodes == 7
        assert store.visit_count(6) == 1

    def test_queries_beyond_capacity_are_zero(self):
        store = WalkStore(2)
        assert store.visit_count(10) == 0
        assert store.distinct_segment_count(10) == 0
        assert store.visits_of(10) == {}
        assert store.segment_ids_visiting(10) == []

    def test_side_tracking(self):
        store = WalkStore(4, track_sides=True)
        store.add_segment(WalkSegment([0, 1, 2], END_RESET, parity_offset=SIDE_HUB))
        store.add_segment(
            WalkSegment([2, 1], END_RESET, parity_offset=SIDE_AUTHORITY)
        )
        assert store.side_visit_count(0, SIDE_HUB) == 1
        # node 1: forward segment position 1 (authority) + backward segment
        # position 1 (hub)
        assert store.side_visit_count(1, SIDE_AUTHORITY) == 1
        assert store.side_visit_count(1, SIDE_HUB) == 1
        # node 2: forward segment position 2 (hub) + backward start (authority)
        assert store.side_visit_count(2, SIDE_HUB) == 1
        assert store.side_visit_count(2, SIDE_AUTHORITY) == 1
        store.check_invariants()

    def test_side_queries_require_tracking(self):
        store = WalkStore(2)
        with pytest.raises(WalkStateError):
            store.side_visit_count(0, SIDE_HUB)
        with pytest.raises(WalkStateError):
            store.side_visit_count_array(SIDE_HUB)

    def test_visit_count_array(self):
        store = WalkStore(3)
        store.add_segment(WalkSegment([0, 1, 1], END_RESET))
        assert store.visit_count_array().tolist() == [1, 2, 0]


class TestScalarWalker:
    def test_follows_edges_and_counts(self, random_graph):
        rng = np.random.default_rng(0)
        for start in range(0, 60, 7):
            seg = simulate_reset_walk(random_graph, start, 0.3, rng)
            assert seg.nodes[0] == start
            for a, b in zip(seg.nodes, seg.nodes[1:]):
                assert random_graph.has_edge(a, b)

    def test_dangling_end(self):
        graph = DynamicDiGraph.from_edges([(0, 1)])
        rng = np.random.default_rng(0)
        reasons = set()
        for _ in range(200):
            seg = simulate_reset_walk(graph, 0, 0.5, rng)
            reasons.add(seg.end_reason)
            if seg.end_reason == END_DANGLING:
                assert seg.nodes == [0, 1]
        assert reasons == {END_RESET, END_DANGLING}

    def test_eps_one_is_trivial(self, cycle_graph):
        seg = simulate_reset_walk(cycle_graph, 5, 1.0, np.random.default_rng(0))
        assert seg.nodes == [5]
        assert seg.end_reason == END_RESET

    def test_mean_length(self, cycle_graph):
        rng = np.random.default_rng(42)
        lengths = [
            len(simulate_reset_walk(cycle_graph, 0, 0.2, rng).nodes)
            for _ in range(20000)
        ]
        assert abs(np.mean(lengths) - 5.0) < 0.15
