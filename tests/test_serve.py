"""The serving layer's differential harness and unit tests.

The central contract (ISSUE 2's acceptance, carried forward to the ISSUE
5 kernel): for **any** interleaving of queries and ``apply_batch`` calls,
a ``QueryEngine`` answer — cache hit or miss, batched or single — equals
a cache-free B=1 ``QueryKernel`` run on the same post-update store with
the same derived RNG (or a cache-free ``PersonalizedPageRank`` run when
``use_kernel=False``).  Hypothesis drives random interleavings against
that oracle; the rest of the file pins down each component (result cache,
fetch cache, batcher, kernel batching, traffic).
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import FetchCache, PersonalizedPageRank
from repro.core.query_kernel import QueryKernel
from repro.errors import ConfigurationError, LoadShedError
from repro.graph.arrival import ArrivalEvent, RandomPermutationArrival
from repro.serve import (
    QueryEngine,
    QueryRequest,
    RequestBatcher,
    ResultCache,
    ServeStats,
    interleaved_traffic,
    zipf_seed_sequence,
)
from repro.store.pagerank_store import FETCH_SAMPLED_EDGE, PageRankStore
from repro.workloads.twitter_like import twitter_like_graph

NODES = 10
WALK_LENGTH = 150


def _fresh_engine(seed, *, nodes=NODES, walks=3, eps=0.3) -> IncrementalPageRank:
    engine = IncrementalPageRank(
        walks_per_node=walks, rng=seed, reset_probability=eps
    )
    for _ in range(nodes):
        engine.add_node()
    return engine


def _toggle_stream(ops) -> list[ArrivalEvent]:
    """Interleaved add/remove events (same idiom as the batch harness)."""
    applied: set[tuple[int, int]] = set()
    events = []
    for u, v in ops:
        if (u, v) in applied:
            events.append(ArrivalEvent("remove", u, v))
            applied.discard((u, v))
        else:
            events.append(ArrivalEvent("add", u, v))
            applied.add((u, v))
    return events


def _reference_top_k(query_engine, seed, k, length):
    """The cache-free oracle: fresh B=1 kernel, same derived RNG, store."""
    engine = query_engine.engine
    kernel = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    return kernel.batch_top_k(
        [seed],
        k,
        length=length,
        exclude_friends=True,
        rngs=[query_engine.query_rng(seed, length)],
    )[0]


# ----------------------------------------------------------------------
# The differential acceptance harness
# ----------------------------------------------------------------------

edge_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODES - 1),
        st.integers(min_value=0, max_value=NODES - 1),
    ).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=8,
)

# an interleaving: phases of updates (edge ops) and queries (seed lists)
interleavings = st.lists(
    st.one_of(
        st.tuples(st.just("update"), edge_ops),
        st.tuples(
            st.just("query"),
            st.lists(
                st.integers(min_value=0, max_value=NODES - 1),
                min_size=1,
                max_size=4,
            ),
        ),
    ),
    min_size=2,
    max_size=8,
)


class TestDifferentialInterleaving:
    @given(interleavings, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_any_interleaving_matches_cache_free_reference(
        self, phases, seed
    ):
        engine = _fresh_engine(seed)
        initial = [(i, (i + 1) % NODES) for i in range(NODES)]
        engine.apply_batch(_toggle_stream(initial))
        query_engine = QueryEngine(engine, rng_seed=seed % 97)
        applied: set[tuple[int, int]] = set(initial)
        for kind, payload in phases:
            if kind == "update":
                events = []
                for u, v in payload:
                    if (u, v) in applied:
                        events.append(ArrivalEvent("remove", u, v))
                        applied.discard((u, v))
                    else:
                        events.append(ArrivalEvent("add", u, v))
                        applied.add((u, v))
                engine.apply_batch(events)
                continue
            for query_seed in payload:
                served = query_engine.top_k(query_seed, 3, length=WALK_LENGTH)
                expected = _reference_top_k(
                    query_engine, query_seed, 3, WALK_LENGTH
                )
                assert served.ranking == expected.ranking

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=NODES - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_ppr_walks_match_reference(self, seed, query_seed):
        engine = _fresh_engine(seed)
        engine.apply_batch(
            _toggle_stream([(i, (i + 2) % NODES) for i in range(NODES)])
        )
        query_engine = QueryEngine(engine, rng_seed=3)
        kernel = QueryKernel(
            engine.pagerank_store, reset_probability=engine.reset_probability
        )
        served = query_engine.ppr(query_seed, WALK_LENGTH)
        expected = kernel.stitched_walk(
            query_seed,
            WALK_LENGTH,
            rng=query_engine.query_rng(query_seed, WALK_LENGTH),
        )
        assert served.visit_counts == expected.visit_counts
        # a repeat is a hit and returns the identical cached result
        again = query_engine.ppr(query_seed, WALK_LENGTH)
        assert again is served

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=NODES - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_reference_walker_mode_matches_scalar_reference(
        self, seed, query_seed
    ):
        """``use_kernel=False`` preserves the pre-kernel serve contract."""
        engine = _fresh_engine(seed)
        engine.apply_batch(
            _toggle_stream([(i, (i + 2) % NODES) for i in range(NODES)])
        )
        query_engine = QueryEngine(engine, rng_seed=3, use_kernel=False)
        walker = PersonalizedPageRank(
            engine.pagerank_store, reset_probability=engine.reset_probability
        )
        served = query_engine.ppr(query_seed, WALK_LENGTH)
        expected = walker.stitched_walk(
            query_seed,
            WALK_LENGTH,
            rng=query_engine.query_rng(query_seed, WALK_LENGTH),
        )
        assert served.visit_counts == expected.visit_counts

    def test_differential_on_medium_graph_through_batcher(self):
        graph = twitter_like_graph(300, 3600, rng=11)
        events = list(RandomPermutationArrival.of_graph(graph, rng=12))
        engine = IncrementalPageRank(
            walks_per_node=5, rng=13, reset_probability=0.25
        )
        for _ in range(300):
            engine.add_node()
        engine.apply_batch(events[: len(events) // 2])
        query_engine = QueryEngine(engine, rng_seed=5)
        with RequestBatcher(
            query_engine, max_workers=4, max_queue_depth=4096
        ) as batcher:
            requests = [
                QueryRequest(seed=s, k=5, length=500)
                for s in zipf_seed_sequence(60, 300, rng=14)
            ]
            first = batcher.run(requests)
            engine.apply_batch(events[len(events) // 2 :])
            second = batcher.run(requests)
        for request, result in zip(requests, second):
            expected = _reference_top_k(query_engine, request.seed, 5, 500)
            assert result.ranking == expected.ranking
        assert all(r is not None for r in first)


# ----------------------------------------------------------------------
# Invalidation precision
# ----------------------------------------------------------------------

class TestInvalidation:
    def _two_component_engine(self):
        """Nodes 0-4 and 5-9 form disconnected cycles: disjoint footprints."""
        engine = _fresh_engine(7)
        events = [
            ArrivalEvent("add", i, (i + 1) % 5) for i in range(5)
        ] + [
            ArrivalEvent("add", 5 + i, 5 + (i + 1) % 5) for i in range(5)
        ]
        engine.apply_batch(events)
        return engine

    def test_update_in_other_component_preserves_cache(self):
        engine = self._two_component_engine()
        query_engine = QueryEngine(engine, rng_seed=1)
        left = query_engine.top_k(0, 3, length=WALK_LENGTH)
        right = query_engine.top_k(7, 3, length=WALK_LENGTH)
        assert len(query_engine.results) == 2
        # mutate inside the right component only
        engine.add_edge(5, 7)
        keys = query_engine.results.keys()
        assert any(key[1] == 0 for key in keys), "left survived"
        assert not any(key[1] == 7 for key in keys), "right invalidated"
        # the surviving hit is still differentially correct
        again = query_engine.top_k(0, 3, length=WALK_LENGTH)
        assert again is left
        expected = _reference_top_k(query_engine, 0, 3, WALK_LENGTH)
        assert again.ranking == expected.ranking
        # the invalidated seed recomputes correctly too
        fresh = query_engine.top_k(7, 3, length=WALK_LENGTH)
        assert fresh is not right
        expected = _reference_top_k(query_engine, 7, 3, WALK_LENGTH)
        assert fresh.ranking == expected.ranking

    def test_epoch_bumps_once_per_mutation(self):
        engine = _fresh_engine(3)
        before = engine.epoch
        engine.add_edge(0, 1)
        assert engine.epoch == before + 1
        engine.apply_batch(
            [ArrivalEvent("add", 1, 2), ArrivalEvent("add", 2, 3)]
        )
        assert engine.epoch == before + 2
        engine.remove_edge(0, 1)
        assert engine.epoch == before + 3

    def test_dirty_nodes_reported_on_reports(self):
        engine = _fresh_engine(5)
        report = engine.add_edge(0, 1)
        assert {0, 1} <= set(report.dirty_nodes)
        batch = engine.apply_batch(
            [ArrivalEvent("add", 2, 3), ArrivalEvent("remove", 0, 1)]
        )
        assert {0, 1, 2, 3} <= set(batch.dirty_nodes)

    def test_initialize_flushes_everything(self):
        engine = self._two_component_engine()
        query_engine = QueryEngine(engine, rng_seed=1)
        query_engine.top_k(0, 3, length=WALK_LENGTH)
        assert len(query_engine.results) == 1
        engine.initialize()
        assert len(query_engine.results) == 0
        assert query_engine.stats.flushes >= 1

    def test_detach_stops_invalidation(self):
        engine = self._two_component_engine()
        query_engine = QueryEngine(engine, rng_seed=1)
        query_engine.top_k(0, 3, length=WALK_LENGTH)
        query_engine.detach()
        engine.add_edge(0, 3)
        assert len(query_engine.results) == 1  # no longer subscribed


# ----------------------------------------------------------------------
# ResultCache mechanics
# ----------------------------------------------------------------------

class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1, {1}, epoch=0)
        cache.put("b", 2, {2}, epoch=0)
        assert cache.get("a") == (True, 1)  # refreshes a
        cache.put("c", 3, {3}, epoch=0)  # evicts b (least recent)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = ResultCache(capacity=8, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1, {1}, epoch=0)
        now[0] = 9.9
        assert cache.get("a") == (True, 1)
        now[0] = 10.1
        assert cache.get("a") == (False, None)
        assert cache.expirations == 1

    def test_footprint_invalidation_is_selective(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1, {1, 2, 3}, epoch=0)
        cache.put("b", 2, {4, 5}, epoch=0)
        dropped = cache.invalidate({3})
        assert dropped == 1
        assert cache.get("a") == (False, None)
        assert cache.get("b") == (True, 2)

    def test_large_dirty_set_falls_back_to_flush(self):
        cache = ResultCache(capacity=8, flush_threshold=4)
        cache.put("a", 1, {1}, epoch=0)
        cache.put("b", 2, {100}, epoch=0)  # footprint disjoint from dirty
        cache.invalidate(set(range(2, 50)))  # 48 dirty nodes > threshold
        assert len(cache) == 0
        assert cache.flushes == 1

    def test_none_means_flush(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1, {1}, epoch=0)
        assert cache.invalidate(None) == 1
        assert len(cache) == 0

    def test_overwrite_reindexes_footprint(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1, {1}, epoch=0)
        cache.put("a", 2, {9}, epoch=1)
        cache.invalidate({1})  # old footprint must be gone
        assert cache.get("a") == (True, 2)
        cache.invalidate({9})
        assert cache.get("a") == (False, None)

    def test_guarded_put_rejects_result_computed_before_invalidation(self):
        # the compute/invalidate race: a worker snapshots the version,
        # walks the pre-update store, the update invalidates, and only
        # then does the worker try to insert — the insert must be dropped
        # (otherwise the stale entry would survive forever).
        cache = ResultCache(capacity=8)
        guard = cache.version
        cache.invalidate({3})  # update lands while the walk is in flight
        assert cache.put("a", 1, {1, 2}, epoch=0, guard_version=guard) is None
        assert cache.get("a") == (False, None)
        assert cache.stale_rejections == 1
        # an unguarded or current-version put still works
        assert cache.put("a", 1, {1, 2}, epoch=0, guard_version=cache.version)
        assert cache.get("a") == (True, 1)

    def test_fetch_cache_guarded_store_rejected_after_invalidation(self):
        engine = _fresh_engine(8)
        engine.add_edge(0, 1)
        cache = FetchCache()
        cache.prewarm(engine.pagerank_store, [1])
        guard = cache.version
        payload = cache.lookup(1)
        cache.invalidate([0])  # any invalidation event bumps the version
        cache.store(0, payload, guard_version=guard)
        assert cache.lookup(0) is None
        assert cache.stale_rejections == 1

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            ResultCache(capacity=0)
        with pytest.raises(ConfigurationError):
            ResultCache(ttl=-1)
        with pytest.raises(ConfigurationError):
            ResultCache(flush_threshold=0)


# ----------------------------------------------------------------------
# FetchCache mechanics
# ----------------------------------------------------------------------

class TestFetchCache:
    def test_walks_identical_with_and_without_cache(self):
        engine = _fresh_engine(1)
        engine.apply_batch(
            _toggle_stream([(i, (i + 1) % NODES) for i in range(NODES)])
        )
        walker = PersonalizedPageRank(engine.pagerank_store)
        cache = FetchCache()
        for trial in range(3):
            rng_a = np.random.default_rng(trial)
            rng_b = np.random.default_rng(trial)
            bare = walker.stitched_walk(0, 300, rng=rng_a)
            cached = walker.stitched_walk(0, 300, rng=rng_b, fetch_cache=cache)
            assert bare.visit_counts == cached.visit_counts
            assert bare.fetches == cached.fetches + cached.cached_fetches
        assert cache.hits > 0

    def test_capacity_evicts_lru(self):
        cache = FetchCache(capacity=2)
        engine = _fresh_engine(2)
        engine.add_edge(0, 1)
        cache.prewarm(engine.pagerank_store, [0, 1, 2])
        assert len(cache) == 2
        assert cache.evicted == 1

    def test_relooked_up_entry_survives_eviction_of_colder_one(self):
        """Strict LRU: a re-``lookup``ed entry is *recently used* — the
        eviction pops the coldest entry, not the oldest insertion."""
        cache = FetchCache(capacity=2)
        engine = _fresh_engine(11)
        engine.add_edge(0, 1)
        cache.prewarm(engine.pagerank_store, [0, 1])
        assert cache.lookup(0) is not None  # 0 is now hotter than 1
        cache.prewarm(engine.pagerank_store, [2])  # evicts 1, not 0
        assert cache.lookup(0) is not None
        assert cache.lookup(2) is not None
        assert cache.lookup(1) is None
        assert cache.evicted == 1

    def test_repr_exposes_capacity_and_eviction_counters(self):
        cache = FetchCache(capacity=3)
        rendered = repr(cache)
        assert "capacity=3" in rendered
        assert "evicted=0" in rendered
        assert repr(FetchCache()).count("capacity=None") == 1

    def test_sampled_edge_mode_rejected(self):
        engine = _fresh_engine(3)
        store = PageRankStore(
            engine.social_store,
            walk_store=engine.walks,
            fetch_mode=FETCH_SAMPLED_EDGE,
        )
        walker = PersonalizedPageRank(store)
        with pytest.raises(ConfigurationError):
            walker.stitched_walk(0, 10, fetch_cache=FetchCache())
        with pytest.raises(ConfigurationError):
            FetchCache().prewarm(store, [0])

    def test_invalidate_and_counters(self):
        cache = FetchCache()
        engine = _fresh_engine(4)
        engine.add_edge(0, 1)
        cache.prewarm(engine.pagerank_store, [0, 1])
        assert cache.lookup(0) is not None
        assert cache.invalidate([0, 5]) == 1
        assert cache.lookup(0) is None
        assert cache.hits == 1 and cache.misses == 1


# ----------------------------------------------------------------------
# Deterministic tie-breaking (satellite)
# ----------------------------------------------------------------------

class TestTieBreaking:
    def test_engine_top_breaks_ties_by_node_id(self):
        # a directed cycle: every node has the same score by symmetry of
        # the stored-walk construction? Not exactly — but equal *scores*
        # are guaranteed for nodes with identical visit counts, so build
        # the degenerate case: no edges at all, every walk is [v].
        engine = _fresh_engine(9, nodes=8)
        top = engine.top(5)
        assert [node for node, _ in top] == [0, 1, 2, 3, 4]
        scores = {score for _, score in top}
        assert len(scores) == 1  # genuinely tied

    def test_engine_top_is_stable_under_recompute(self):
        graph = twitter_like_graph(200, 2400, rng=3)
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=3, rng=4)
        assert engine.top(50) == engine.top(50)
        # k larger than n falls back to full ranking, still deterministic
        assert engine.top(500) == engine.top(500)

    def test_walk_result_top_breaks_ties_by_node_id(self):
        from repro.core.personalized import StitchedWalkResult

        walk = StitchedWalkResult(
            seed=0,
            length=9,
            visit_counts=Counter({5: 3, 2: 3, 9: 2, 1: 2, 4: 1}),
            fetches=0,
        )
        assert walk.top(4) == [(2, 3), (5, 3), (1, 2), (9, 2)]


# ----------------------------------------------------------------------
# RequestBatcher
# ----------------------------------------------------------------------

class TestRequestBatcher:
    @pytest.fixture
    def service(self):
        engine = _fresh_engine(6)
        engine.apply_batch(
            _toggle_stream([(i, (i + 1) % NODES) for i in range(NODES)])
        )
        query_engine = QueryEngine(engine, rng_seed=2)
        yield query_engine

    def test_duplicate_in_flight_requests_coalesce(self, service):
        request = QueryRequest(seed=0, k=3, length=WALK_LENGTH)
        with RequestBatcher(service, max_workers=2) as batcher:
            futures = [batcher.submit(request) for _ in range(5)]
            results = [future.result() for future in futures]
        assert service.stats.coalesced >= 1
        assert all(result is results[0] for result in results)
        # coalesced + executed == offered
        assert service.stats.coalesced + service.stats.queries >= 5

    def test_queue_depth_sheds_with_load_shed_error(self, service):
        with RequestBatcher(
            service, max_workers=1, max_queue_depth=2
        ) as batcher:
            futures = [
                batcher.submit(QueryRequest(seed=s, k=3, length=WALK_LENGTH))
                for s in range(NODES)
            ]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except LoadShedError as error:
                    assert error.max_queue_depth == 2
                    outcomes.append(None)
        shed = sum(1 for outcome in outcomes if outcome is None)
        assert shed == service.stats.shed
        assert shed > 0
        assert 0 < service.stats.shed_rate < 1

    def test_run_preserves_request_order_and_determinism(self, service):
        requests = [
            QueryRequest(seed=s % NODES, k=3, length=WALK_LENGTH)
            for s in range(20)
        ]
        with RequestBatcher(service, max_workers=4) as batcher:
            threaded = batcher.run(requests)
        serial = [
            service.top_k(r.seed, r.k, length=r.length) for r in requests
        ]
        for threaded_result, serial_result in zip(threaded, serial):
            assert threaded_result.ranking == serial_result.ranking

    def test_invalid_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryRequest(kind="nope", seed=0)
        with pytest.raises(ConfigurationError):
            QueryRequest(kind="ppr", seed=0, length=None)

    def test_restart_resets_counters_between_sessions(self, service):
        """Regression: ServeStats/CallStats outlive a batcher, so a second
        serve session in the same process inherited the first session's
        counts (hit rates, latency percentiles, fetch totals all lied)."""
        requests = [
            QueryRequest(seed=s % NODES, k=3, length=WALK_LENGTH)
            for s in range(12)
        ]
        with RequestBatcher(service, max_workers=2) as batcher:
            batcher.run(requests)
        first_session = service.stats.snapshot()
        assert first_session["queries"] > 0
        assert service.store.stats.count("fetch") > 0

        # restart WITHOUT fresh_stats: the stale counts leak through
        with RequestBatcher(service, max_workers=2) as stale:
            assert stale.stats.queries == first_session["queries"]

        # restart WITH fresh_stats: both counter objects start from zero
        with RequestBatcher(service, max_workers=2, fresh_stats=True) as batcher:
            assert batcher.stats.queries == 0
            assert batcher.stats.shed == 0
            assert batcher.stats.mean_latency == 0.0
            assert service.store.stats.count("fetch") == 0
            batcher.run(requests[:5])
        second_session = service.stats.snapshot()
        assert second_session["queries"] == 5
        assert second_session["queries"] < first_session["queries"]
        # the result cache is intact across the restart, so the second
        # session's hits reflect only its own traffic
        assert second_session["hits"] <= 5

    def test_serve_stats_reset_is_complete(self):
        """Regression (extends the PR 4 fix): every counter — including
        the PR 6 staleness-scheduler family — must zero on reset; a
        counter missed here silently pollutes the next serve session."""
        stats = ServeStats()
        stats.record_query(hit=True, latency=0.25)
        stats.record_query(hit=False, latency=0.5)
        stats.record_shed()
        stats.record_coalesced()
        stats.record_invalidation(3, flush=True)
        stats.record_kernel_batch(2, (10, 12))
        stats.record_deferred(4, depth=4)
        stats.record_repair(3, 0.02, reason="budget", depth=1)
        stats.record_repair(1, 0.01, reason="read")
        assert stats.repairs == 2 and stats.max_stale_depth == 4
        stats.reset()
        snap = stats.snapshot()
        assert all(value == 0 for value in snap.values())
        assert stats.percentile(0.99) == 0.0
        assert stats.max_latency == 0.0
        assert stats.mean_repair_latency == 0.0
        assert stats.max_repair_latency == 0.0
        assert stats.repair_latency_percentile(0.99) == 0.0
        # the object keeps working after a reset
        stats.record_query(hit=False, latency=0.1)
        assert stats.queries == 1 and stats.hit_rate == 0.0
        stats.record_repair(2, 0.05, reason="budget", depth=0)
        assert stats.budget_repairs == 1 and stats.repaired_events == 2

    def test_serve_stats_repair_accounting_and_render(self):
        stats = ServeStats()
        stats.record_deferred(2, depth=2)
        stats.record_deferred(3, depth=5)
        assert stats.deferred_events == 5
        assert stats.stale_depth == 5 and stats.max_stale_depth == 5
        stats.record_repair(5, 0.004, reason="budget", depth=0)
        assert stats.stale_depth == 0 and stats.max_stale_depth == 5
        assert stats.repairs == 1 and stats.budget_repairs == 1
        assert stats.read_repairs == 0
        assert stats.mean_repair_latency == pytest.approx(0.004)
        # Interpolated-within-bucket estimate: inside the containing
        # geometric bucket and never above the observed max.
        assert 0.002048 < stats.repair_latency_percentile(0.5) <= 0.004
        assert stats.repair_latency_percentile(1.0) == pytest.approx(0.004)
        with pytest.raises(ConfigurationError):
            stats.record_deferred(0, depth=0)
        with pytest.raises(ConfigurationError):
            stats.repair_latency_percentile(1.5)
        rendered = stats.render()
        assert "stale queue" in rendered and "repairs 1" in rendered


# ----------------------------------------------------------------------
# Kernel-batched serving (ISSUE 5)
# ----------------------------------------------------------------------

class TestKernelBatchedServe:
    @pytest.fixture
    def service(self):
        engine = _fresh_engine(21)
        engine.apply_batch(
            _toggle_stream([(i, (i + 1) % NODES) for i in range(NODES)])
        )
        yield QueryEngine(engine, rng_seed=4)

    def test_run_batch_equals_singles(self, service):
        requests = [
            QueryRequest(seed=s % NODES, k=3, length=WALK_LENGTH)
            for s in range(15)
        ] + [QueryRequest(kind="ppr", seed=2, length=WALK_LENGTH)]
        batched = service.run_batch(requests)
        # recompute through the single-query path on a cache-free twin
        twin = QueryEngine(service.engine, rng_seed=4, cache_results=False)
        for request, result in zip(requests, batched):
            if request.kind == "ppr":
                single = twin.ppr(request.seed, request.length)
                assert single.visit_counts == result.visit_counts
            else:
                single = twin.top_k(
                    request.seed, request.k, length=request.length
                )
                assert single.ranking == result.ranking
        twin.detach()

    def test_run_batch_sizes_walks_via_equation_4(self, service):
        request = QueryRequest(seed=3, k=2)  # no explicit length
        batched = service.run_batch([request])[0]
        single = service.top_k(3, 2)  # same key => the cached batch answer
        assert single is batched
        assert batched.walk_length > 0

    def test_run_batch_without_kernel_matches_singles(self, service):
        scalar_engine = QueryEngine(
            service.engine, rng_seed=4, use_kernel=False
        )
        requests = [
            QueryRequest(seed=s, k=3, length=WALK_LENGTH) for s in range(6)
        ]
        batched = scalar_engine.run_batch(requests)
        twin = QueryEngine(
            service.engine,
            rng_seed=4,
            use_kernel=False,
            cache_results=False,
        )
        for request, result in zip(requests, batched):
            single = twin.top_k(request.seed, request.k, length=request.length)
            assert single.ranking == result.ranking
        assert scalar_engine.stats.kernel_batches == 0
        scalar_engine.detach()
        twin.detach()

    def test_batcher_validates_max_kernel_batch(self, service):
        with pytest.raises(ConfigurationError):
            RequestBatcher(service, max_kernel_batch=0)

    def test_run_batch_serves_hits_and_dedupes(self, service):
        request = QueryRequest(seed=1, k=3, length=WALK_LENGTH)
        first = service.run_batch([request, request, request])
        assert first[0] is first[1] is first[2]
        before = service.stats.snapshot()
        again = service.run_batch([request])
        assert again[0] is first[0]  # served from the result cache
        after = service.stats.snapshot()
        assert after["hits"] == before["hits"] + 1
        assert after["kernel_batches"] == before["kernel_batches"]

    def test_run_batch_records_kernel_histograms(self, service):
        requests = [
            QueryRequest(seed=s, k=3, length=WALK_LENGTH)
            for s in range(NODES)
        ]
        service.run_batch(requests)
        assert service.stats.kernel_batches == 1
        assert service.stats.kernel_queries == NODES
        assert service.stats.mean_kernel_batch == NODES
        assert service.stats.mean_steps_per_query >= WALK_LENGTH
        assert sum(service.stats.kernel_batch_size_histogram().values()) == 1
        assert (
            sum(service.stats.steps_per_query_histogram().values()) == NODES
        )

    def test_batched_run_matches_legacy_run(self, service):
        requests = [
            QueryRequest(seed=s % NODES, k=3, length=WALK_LENGTH)
            for s in range(20)
        ]
        with RequestBatcher(service, max_workers=3) as batched:
            threaded = batched.run(requests)
        legacy_engine = QueryEngine(service.engine, rng_seed=4)
        with RequestBatcher(
            legacy_engine, max_workers=3, kernel_batching=False
        ) as legacy:
            sequential = legacy.run(requests)
        for a, b in zip(threaded, sequential):
            assert a.ranking == b.ranking
        assert service.stats.coalesced + legacy_engine.stats.coalesced > 0
        legacy_engine.detach()

    def test_batched_run_sheds_past_queue_depth(self, service):
        requests = [
            QueryRequest(seed=s, k=3, length=WALK_LENGTH)
            for s in range(NODES)
        ]
        with RequestBatcher(
            service, max_workers=2, max_queue_depth=4
        ) as batcher:
            results = batcher.run(requests)
        assert sum(1 for r in results if r is None) == NODES - 4
        assert service.stats.shed == NODES - 4
        assert all(r is not None for r in results[:4])

    def test_batched_drain_shares_depth_window_and_bills_shed_duplicates(
        self, service
    ):
        requests = [
            QueryRequest(seed=s, k=3, length=WALK_LENGTH) for s in range(6)
        ] + [QueryRequest(seed=5, k=3, length=WALK_LENGTH)]
        with RequestBatcher(
            service, max_workers=2, max_queue_depth=4
        ) as batcher:
            results = batcher.run(requests)
            # admission charges the shared window and releases it fully
            assert batcher.depth == 0
        # seeds 4 and 5 shed, plus the duplicate of the shed seed 5
        assert service.stats.shed == 3
        assert service.stats.coalesced == 0
        assert results[4] is None and results[5] is None
        assert results[6] is None
        assert all(r is not None for r in results[:4])

    def test_batched_run_respects_max_kernel_batch(self, service):
        requests = [
            QueryRequest(seed=s, k=3, length=WALK_LENGTH)
            for s in range(NODES)
        ]
        with RequestBatcher(
            service, max_workers=1, max_kernel_batch=3
        ) as batcher:
            batcher.run(requests)
        # ceil(10 / 3) = 4 kernel invocations, all on one worker
        assert service.stats.kernel_batches == 4
        assert service.stats.kernel_queries == NODES

    def test_batch_answers_survive_as_cache_hits_after_updates(self, service):
        """Batched answers obey the same invalidation contract as singles."""
        requests = [
            QueryRequest(seed=s, k=3, length=WALK_LENGTH)
            for s in range(NODES)
        ]
        with RequestBatcher(service, max_workers=2) as batcher:
            batcher.run(requests)
            service.engine.apply_batch([ArrivalEvent("add", 0, 5)])
            second = batcher.run(requests)
        for request, result in zip(requests, second):
            expected = _reference_top_k(
                service, request.seed, 3, WALK_LENGTH
            )
            assert result.ranking == expected.ranking


# ----------------------------------------------------------------------
# Traffic generation + stats
# ----------------------------------------------------------------------

class TestTraffic:
    def test_zipf_skew_and_pool(self):
        seeds = zipf_seed_sequence(2000, 50, exponent=1.0, rng=1)
        assert len(seeds) == 2000
        assert set(seeds) <= set(range(50))
        counts = Counter(seeds)
        top_share = counts.most_common(5)
        assert sum(c for _, c in top_share) > 0.3 * len(seeds)  # heavy head
        uniform = zipf_seed_sequence(2000, 50, exponent=0.0, rng=1)
        flat = Counter(uniform)
        assert max(flat.values()) < 3 * min(flat.values())

    def test_explicit_pool_and_errors(self):
        seeds = zipf_seed_sequence(100, [7, 11, 13], rng=2)
        assert set(seeds) <= {7, 11, 13}
        with pytest.raises(ConfigurationError):
            zipf_seed_sequence(0, 10)
        with pytest.raises(ConfigurationError):
            zipf_seed_sequence(10, [])
        with pytest.raises(ConfigurationError):
            zipf_seed_sequence(10, 5, exponent=-1)

    def test_interleaved_traffic_alternates_and_exhausts(self):
        events = _toggle_stream([(i, (i + 1) % NODES) for i in range(8)])
        phases = interleaved_traffic(
            events,
            NODES,
            num_queries=10,
            length=50,
            event_batch_size=3,
            query_burst=4,
            rng=3,
        )
        kinds = [phase.kind for phase in phases]
        assert kinds[0] == "queries"
        assert "events" in kinds
        assert sum(len(p.queries) for p in phases) == 10
        assert sum(len(p.events) for p in phases) == 8

    def test_serve_stats_rates_and_percentiles(self):
        stats = ServeStats()
        for latency in (0.001, 0.002, 0.004, 0.1):
            stats.record_query(hit=False, latency=latency)
        stats.record_query(hit=True, latency=1e-6)
        stats.record_shed()
        assert stats.queries == 5
        assert stats.hit_rate == pytest.approx(0.2)
        assert stats.shed_rate == pytest.approx(1 / 6)
        assert stats.percentile(0.0) <= stats.percentile(1.0)
        assert stats.percentile(1.0) >= 0.1
        assert "hit rate" in stats.render()
        with pytest.raises(ConfigurationError):
            stats.percentile(1.5)

    def test_serve_stats_percentiles_interpolate_within_buckets(self):
        """ISSUE-7 regression: p50/p99 interpolate, not bucket-top snap.

        1..1000 ms uniform: the factor-2 bucket containing p50 spans
        (256 ms, 512 ms], so the old bucket-upper-bound estimate was
        locked to 0.512; interpolation must land near the true 0.5005.
        """
        stats = ServeStats()
        for i in range(1, 1001):
            stats.record_query(hit=False, latency=i / 1000.0)
        assert abs(stats.percentile(0.5) - 0.5005) < 0.05
        # p99 true value 0.99005 sits in the (0.512, 1.024] bucket; the
        # estimate interpolates within it and never exceeds the max
        assert 0.512 < stats.percentile(0.99) <= 1.0
        assert stats.percentile(1.0) == pytest.approx(1.0)

    def test_serve_stats_percentiles_empty_and_single(self):
        stats = ServeStats()
        assert stats.percentile(0.5) == 0.0  # empty histogram: 0.0
        assert stats.repair_latency_percentile(0.99) == 0.0
        stats.record_query(hit=False, latency=0.003)
        # one observation: every percentile is clamped to it exactly at
        # p=1.0 and never exceeds it below
        assert 0.0 < stats.percentile(0.5) <= 0.003
        assert stats.percentile(1.0) == pytest.approx(0.003)


# ----------------------------------------------------------------------
# Arena generations (multi-process serving) + lifecycle shutdown
# ----------------------------------------------------------------------


class TestResultCacheGenerations:
    def test_bump_generation_drops_everything_and_advances(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1, {1}, epoch=0)
        cache.put("b", 2, {2}, epoch=0)
        version = cache.version
        generation = cache.bump_generation()
        assert generation == cache.generation == 1
        assert cache.generation_bumps == 1
        assert cache.version > version  # version guard also invalidated
        assert len(cache) == 0
        assert cache.get("a") == (False, None)
        assert cache.get("b") == (False, None)

    def test_put_guarded_by_generation_rejects_stale_arena_results(self):
        # the compute/swap race: a result computed against generation g
        # must never land after the swap to g+1 — its walk read arena
        # memory that no longer backs the store.
        cache = ResultCache(capacity=8)
        observed = cache.generation
        cache.bump_generation()  # swap lands while the walk is in flight
        assert (
            cache.put("a", 1, {1}, epoch=0, generation=observed) is None
        )
        assert cache.get("a") == (False, None)
        assert cache.stale_rejections == 1
        # a result computed against the current generation still lands
        assert cache.put("a", 2, {1}, epoch=0, generation=cache.generation)
        assert cache.get("a") == (True, 2)

    def test_same_user_key_is_distinct_across_generations(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1, {1}, epoch=0)
        cache.bump_generation()
        cache.put("a", 2, {1}, epoch=0)
        assert cache.get("a") == (True, 2)
        assert cache.keys() == ["a"]  # user-facing keys stay unprefixed

    def test_swap_engine_bumps_generation_and_preserves_answers(self):
        engine_a = _fresh_engine(31, nodes=24)
        for u in range(24):
            engine_a.add_edge(u, (u + 1) % 24)
            engine_a.add_edge(u, (u + 5) % 24)
        service = QueryEngine(engine_a, rng_seed=9)
        before = service.top_k(3, 5, length=64)
        assert service.results.generation == 0

        # an identically-built engine stands in for a re-attached arena
        engine_b = _fresh_engine(31, nodes=24)
        for u in range(24):
            engine_b.add_edge(u, (u + 1) % 24)
            engine_b.add_edge(u, (u + 5) % 24)
        generation = service.swap_engine(engine_b)
        assert generation == 1
        assert service.engine is engine_b
        assert service.store is engine_b.pagerank_store
        assert len(service.results) == 0
        after = service.top_k(3, 5, length=64)
        assert after.ranking == before.ranking  # same state, same RNG
        # the new engine's update feed drives invalidation now
        service.top_k(4, 5, length=64)
        engine_b.add_edge(3, 9)
        engine_a.add_edge(2, 8)  # old feed must be disconnected
        assert service.results.generation == 1
        service.detach()

    def test_swap_engine_refused_in_bounded_mode(self):
        engine = _fresh_engine(32, nodes=12)
        for u in range(12):
            engine.add_edge(u, (u + 1) % 12)
        service = QueryEngine(engine, rng_seed=1, freshness="bounded")
        with pytest.raises(ConfigurationError, match="bounded"):
            service.swap_engine(engine)
        service.detach()


class TestDeterministicShutdown:
    def test_batcher_close_is_idempotent_and_observable(self):
        engine = _fresh_engine(33, nodes=12)
        for u in range(12):
            engine.add_edge(u, (u + 1) % 12)
        service = QueryEngine(engine, rng_seed=2)
        batcher = RequestBatcher(service, max_workers=2)
        assert not batcher.closed
        batcher.close()
        assert batcher.closed
        batcher.close()  # second close is a no-op, not an error
        service.detach()

    def test_batcher_context_manager_closes(self):
        engine = _fresh_engine(34, nodes=12)
        for u in range(12):
            engine.add_edge(u, (u + 1) % 12)
        service = QueryEngine(engine, rng_seed=2)
        with RequestBatcher(service, max_workers=2) as batcher:
            results = batcher.run(
                [QueryRequest(kind="topk", seed=1, k=3)]
            )
            assert results[0] is not None
        assert batcher.closed
        service.detach()

    def test_lifecycle_registry_closes_abandoned_components(self):
        from repro import lifecycle

        class Component:
            def __init__(self):
                self.closed = 0

            def close(self):
                self.closed += 1

        component = Component()
        lifecycle.register_for_shutdown(component)
        lifecycle.shutdown_all()
        assert component.closed == 1
        # the registry drained: a second sweep must not double-close
        lifecycle.shutdown_all()
        assert component.closed == 1

    def test_lifecycle_registry_holds_weak_references(self):
        import gc
        import weakref

        from repro import lifecycle

        class Component:
            def close(self):  # pragma: no cover - must never run
                raise AssertionError("collected component was closed")

        component = Component()
        finalized = weakref.ref(component)
        lifecycle.register_for_shutdown(component)
        del component
        gc.collect()
        assert finalized() is None  # registration didn't keep it alive
        lifecycle.shutdown_all()  # and the dead entry is simply skipped
