"""Incremental engine correctness (§2.2): the maintained store must be
distributionally identical to a freshly built one at every instant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_iteration import exact_pagerank
from repro.core.incremental import (
    REROUTE_RESIMULATE,
    IncrementalPageRank,
)
from repro.core.walks import END_DANGLING
from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent, RandomPermutationArrival
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    directed_erdos_renyi,
    example1_adversarial_gadget,
)


def _mean_incremental_estimate(
    base_edges: list[tuple[int, int]],
    new_edges: list[tuple[int, int]],
    removed_edges: list[tuple[int, int]],
    num_nodes: int,
    *,
    runs: int = 250,
    walks: int = 5,
    eps: float = 0.25,
) -> np.ndarray:
    """Average PageRank estimate over independent incremental engines."""
    totals = np.zeros(num_nodes)
    for seed in range(runs):
        graph = DynamicDiGraph.from_edges(base_edges, num_nodes=num_nodes)
        engine = IncrementalPageRank.from_graph(
            graph, reset_probability=eps, walks_per_node=walks, rng=seed
        )
        for edge in new_edges:
            engine.add_edge(*edge)
        for edge in removed_edges:
            engine.remove_edge(*edge)
        totals += engine.pagerank()
    return totals / runs


class TestDistributionalCorrectness:
    """Mean estimates after incremental maintenance must match the exact
    PageRank of the *final* graph — i.e. the maintained segments follow the
    fresh-walk distribution.  These are the paper's §2.2 claims made
    falsifiable; tolerances are ~5σ at the chosen run counts."""

    EPS = 0.25

    def test_additions_unbiased(self):
        base = [(0, 1), (1, 2), (2, 0), (3, 0), (2, 3)]
        added = [(0, 3), (3, 2), (1, 0)]
        final = DynamicDiGraph.from_edges(base + added, num_nodes=5)
        exact = exact_pagerank(final, reset_probability=self.EPS)
        mean = _mean_incremental_estimate(base, added, [], 5, eps=self.EPS)
        assert np.abs(mean - exact).max() < 0.02

    def test_deletions_unbiased(self):
        base = [(0, 1), (1, 2), (2, 0), (0, 2), (2, 3), (3, 0), (1, 0)]
        removed = [(0, 2), (1, 0)]
        final_edges = [e for e in base if e not in removed]
        final = DynamicDiGraph.from_edges(final_edges, num_nodes=4)
        exact = exact_pagerank(final, reset_probability=self.EPS)
        mean = _mean_incremental_estimate(base, [], removed, 4, eps=self.EPS)
        assert np.abs(mean - exact).max() < 0.02

    def test_dangling_then_undangled(self):
        """Node 2 starts dangling (END_DANGLING segments pile up there),
        then gains an out-edge — the pending-step extension path."""
        base = [(0, 1), (1, 2), (0, 2)]  # node 2 dangling
        added = [(2, 0)]
        final = DynamicDiGraph.from_edges(base + added, num_nodes=3)
        exact = exact_pagerank(final, reset_probability=self.EPS)
        mean = _mean_incremental_estimate(base, added, [], 3, eps=self.EPS)
        assert np.abs(mean - exact).max() < 0.02

    def test_deletion_creates_dangling(self):
        """Removing a node's only out-edge strands segments there; the
        estimates must match the exact absorbed fixed point."""
        base = [(0, 1), (1, 0), (1, 2), (2, 1)]
        removed = [(2, 1)]  # node 2 becomes dangling
        final = DynamicDiGraph.from_edges(
            [e for e in base if e not in removed], num_nodes=3
        )
        exact = exact_pagerank(final, reset_probability=self.EPS)
        mean = _mean_incremental_estimate(base, [], removed, 3, eps=self.EPS)
        assert np.abs(mean - exact).max() < 0.02

    def test_add_then_remove_round_trip(self):
        """Adding then removing an edge must land back on the original
        graph's distribution."""
        base = [(0, 1), (1, 2), (2, 0)]
        original = DynamicDiGraph.from_edges(base, num_nodes=3)
        exact = exact_pagerank(original, reset_probability=self.EPS)
        mean = _mean_incremental_estimate(
            base, [(0, 2)], [(0, 2)], 3, eps=self.EPS
        )
        assert np.abs(mean - exact).max() < 0.02

    @pytest.mark.slow
    def test_random_stream_matches_fresh_build(self):
        """Feed a 60-edge random graph edge by edge; final estimates must
        be as accurate (vs exact) as a from-scratch build — Theorem 4's
        premise that maintenance preserves quality."""
        graph = directed_erdos_renyi(30, 60, rng=3)
        exact = exact_pagerank(graph, reset_probability=0.2)
        inc_totals = np.zeros(30)
        fresh_totals = np.zeros(30)
        runs = 60
        for seed in range(runs):
            empty = DynamicDiGraph(30)
            engine = IncrementalPageRank.from_graph(
                empty, reset_probability=0.2, walks_per_node=4, rng=seed
            )
            arrival = RandomPermutationArrival.of_graph(graph, rng=seed)
            for event in arrival:
                engine.apply(event)
            inc_totals += engine.pagerank()
            fresh = IncrementalPageRank.from_graph(
                graph.copy(), reset_probability=0.2, walks_per_node=4, rng=10_000 + seed
            )
            fresh_totals += fresh.pagerank()
        inc_error = np.abs(inc_totals / runs - exact).sum()
        fresh_error = np.abs(fresh_totals / runs - exact).sum()
        assert inc_error < 0.05
        assert inc_error < 3 * fresh_error + 0.02


class TestIndexIntegrity:
    def test_invariants_through_random_mutations(self):
        rng = np.random.default_rng(8)
        graph = directed_erdos_renyi(25, 80, rng=1)
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=4, rng=2)
        for step in range(150):
            if engine.graph.num_edges and rng.random() < 0.4:
                engine.remove_edge(*engine.graph.random_edge(rng))
            else:
                u, v = int(rng.integers(25)), int(rng.integers(25))
                if u != v and not engine.graph.has_edge(u, v):
                    engine.add_edge(u, v)
            if step % 25 == 0:
                engine.walks.check_invariants()
        engine.walks.check_invariants()
        # Every segment must still be a valid walk on the current graph,
        # except for its dangling-pending endpoints.
        for _, segment in engine.walks.iter_segments():
            for a, b in zip(segment.nodes, segment.nodes[1:]):
                assert engine.graph.has_edge(a, b)
            if segment.end_reason == END_DANGLING:
                assert engine.graph.out_degree(segment.last) == 0

    def test_segments_per_node_preserved(self):
        graph = directed_erdos_renyi(20, 60, rng=4)
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=6, rng=5)
        engine.add_edge(0, 13) if not graph.has_edge(0, 13) else None
        for node in range(engine.num_nodes):
            assert len(engine.walks.segments_starting_at(node)) == 6


class TestNodeArrival:
    def test_add_node_gets_walks(self):
        engine = IncrementalPageRank(walks_per_node=4, rng=0)
        node = engine.add_node()
        assert node == 0
        assert len(engine.walks.segments_starting_at(0)) == 4

    def test_edge_to_new_nodes_creates_walks(self):
        engine = IncrementalPageRank(walks_per_node=3, rng=0)
        engine.add_node()
        report = engine.add_edge(0, 4)  # nodes 1..4 implicitly created
        assert engine.num_nodes == 5
        for node in range(5):
            assert len(engine.walks.segments_starting_at(node)) == 3
        assert report.steps_initialized >= 0
        engine.walks.check_invariants()

    def test_new_node_walks_use_new_edge(self):
        engine = IncrementalPageRank(walks_per_node=200, rng=1)
        engine.add_node()
        engine.add_node()
        engine.add_edge(0, 1)
        # Node 0's fresh walks must sometimes traverse the new edge.
        visits_to_1 = engine.walks.visit_count(1)
        assert visits_to_1 > 200  # node 1's own starts plus traffic from 0


class TestReports:
    def test_report_arithmetic(self, random_graph):
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=5, rng=3
        )
        total_rerouted = 0
        for _ in range(30):
            u, v = engine.graph.random_edge(engine._rng)
            report = engine.remove_edge(u, v)
            assert report.work == report.steps_resimulated + report.steps_discarded
            assert report.store_called == (report.segments_rerouted > 0)
            total_rerouted += report.segments_rerouted
        assert engine.total_segments_rerouted == total_rerouted
        assert engine.removals_processed == 30

    def test_activation_probability_formula(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (1, 0)])
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=5, rng=6)
        walk_count = engine.walks.distinct_segment_count(0)
        report = engine.add_edge(0, 1) if False else engine.add_edge(1, 1) if False else None
        # add a fresh edge out of node 0 and verify the reported probability
        engine.graph.ensure_node(2)
        engine._ensure_walks(2)
        report = engine.add_edge(0, 2)
        degree_after = engine.graph.out_degree(0)
        expected = 1.0 - (1.0 - 1.0 / degree_after) ** walk_count
        assert report.activation_probability == pytest.approx(expected)

    def test_apply_event_dispatch(self, tiny_graph):
        engine = IncrementalPageRank.from_graph(tiny_graph.copy(), walks_per_node=2, rng=0)
        add = engine.apply(ArrivalEvent("add", 3, 0))
        assert add.operation == "add"
        remove = engine.apply(ArrivalEvent("remove", 3, 0))
        assert remove.operation == "remove"


class TestReroutePolicies:
    def test_resimulate_policy_runs(self):
        graph = directed_erdos_renyi(20, 60, rng=7)
        engine = IncrementalPageRank.from_graph(
            graph, walks_per_node=4, rng=8, reroute_policy=REROUTE_RESIMULATE
        )
        for _ in range(10):
            u, v = int(engine._rng.integers(20)), int(engine._rng.integers(20))
            if u != v and not engine.graph.has_edge(u, v):
                engine.add_edge(u, v)
        engine.walks.check_invariants()
        for _, segment in engine.walks.iter_segments():
            for a, b in zip(segment.nodes, segment.nodes[1:]):
                assert engine.graph.has_edge(a, b)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            IncrementalPageRank(reroute_policy="yolo")


class TestAdversarialExample:
    def test_example1_killer_edge_is_omega_n(self):
        """Example 1: with u's out-edges withheld, every walk funnels into
        u and strands; the killer arrival updates Ω(n) segments at once."""
        walks = 5
        costs = {}
        for size in (20, 60):
            gadget, killer, _ = example1_adversarial_gadget(size)
            engine = IncrementalPageRank.from_graph(
                gadget, reset_probability=0.2, walks_per_node=walks, rng=9
            )
            report = engine.add_edge(*killer)
            costs[size] = report.segments_rerouted
            # a constant fraction of all nR segments strand at u
            assert report.segments_rerouted > 0.5 * (3 * size + 1) * walks / 3
        # cost grows linearly with n (ratio 3 expected; demand >= 2)
        assert costs[60] > 2 * costs[20]

    def test_example1_deferred_edges_stay_expensive(self):
        """The subsequent u→x_j arrivals redirect with probability 1/k on
        Ω(n) visits — each still costs Ω(n/k)."""
        gadget, killer, deferred = example1_adversarial_gadget(30)
        engine = IncrementalPageRank.from_graph(
            gadget, reset_probability=0.2, walks_per_node=5, rng=4
        )
        engine.add_edge(*killer)
        first = engine.add_edge(*deferred[0]).segments_rerouted  # prob 1/2
        assert first > 30
        engine.walks.check_invariants()


class TestEstimateInterface:
    def test_pagerank_of_matches_vector(self, random_graph):
        engine = IncrementalPageRank.from_graph(random_graph, walks_per_node=4, rng=1)
        scores = engine.pagerank()
        for node in (0, 5, 59):
            assert engine.pagerank_of(node) == pytest.approx(scores[node])

    def test_top_is_sorted(self, random_graph):
        engine = IncrementalPageRank.from_graph(random_graph, walks_per_node=4, rng=1)
        top = engine.top(7)
        values = [s for _, s in top]
        assert values == sorted(values, reverse=True)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            IncrementalPageRank(reset_probability=0.0)
        with pytest.raises(ConfigurationError):
            IncrementalPageRank(walks_per_node=0)
