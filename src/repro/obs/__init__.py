"""Unified observability plane: metrics, tracing, and stage profiling.

Every layer of the stack bills into one :class:`MetricsRegistry`
(Prometheus-text and JSON exposition), emits structured spans through a
:class:`Tracer`, and attributes hot-path wall-clock time via
:class:`StageProfiler` — all gated by the ``REPRO_OBS`` level so the
disabled path costs one branch.  See DESIGN.md §12.
"""

from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    STEP_BUCKETS,
)
from repro.obs.profile import (
    LEVEL_OFF,
    LEVEL_PROFILE,
    LEVEL_TRACE,
    StageProfiler,
    get_level,
    set_level,
)
from repro.obs.tracing import RingSink, Span, Tracer, current_span

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "LEVEL_OFF",
    "LEVEL_PROFILE",
    "LEVEL_TRACE",
    "MetricsRegistry",
    "RingSink",
    "STEP_BUCKETS",
    "Span",
    "StageProfiler",
    "Tracer",
    "current_span",
    "get_level",
    "set_level",
]
