"""Differential harness: the batched update path vs the per-edge path.

``IncrementalPageRank.apply_batch`` must be a drop-in replacement for
replaying the same event slice one edge at a time.  Bitwise equality is
impossible (the two paths consume randomness in different orders), so the
contract is checked at the two levels that matter:

* **structural invariants** — after the same slice, both paths leave the
  store with the same graph, exactly ``n·R`` segments (``R`` rooted at
  every node), every segment a valid walk of the post-batch graph, exact
  ``X``/``W`` visit-index consistency, and exact dangling bookkeeping;
* **distributional agreement** — on a fixed-seed medium graph, both
  paths' PageRank estimates sit within the same calibrated tolerance of
  ``power_iteration``'s exact scores and of each other.

All stochastic tests run on fixed seeds; tolerances were calibrated once
against those seeds (see tests/conftest.py's note).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.power_iteration import exact_pagerank
from repro.core.incremental import IncrementalPageRank
from repro.core.walks import END_DANGLING
from repro.graph.arrival import (
    ArrivalEvent,
    RandomPermutationArrival,
    slice_events,
)
from repro.workloads.twitter_like import twitter_like_graph

NODES = 6

edge_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODES - 1),
        st.integers(min_value=0, max_value=NODES - 1),
    ).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=40,
)


def _toggle_stream(ops) -> list[ArrivalEvent]:
    """Interleaved add/remove events: repeating a pair removes the edge."""
    applied: set[tuple[int, int]] = set()
    events = []
    for u, v in ops:
        if (u, v) in applied:
            events.append(ArrivalEvent("remove", u, v))
            applied.discard((u, v))
        else:
            events.append(ArrivalEvent("add", u, v))
            applied.add((u, v))
    return events


def _fresh_engine(seed, *, nodes=NODES, walks=3, eps=0.3) -> IncrementalPageRank:
    engine = IncrementalPageRank(
        walks_per_node=walks, rng=seed, reset_probability=eps
    )
    for _ in range(nodes):
        engine.add_node()
    return engine


def _structural_signature(engine: IncrementalPageRank):
    """Everything two correct ingestion paths must agree on exactly."""
    engine.walks.check_invariants()  # X/W index consistent with segments
    graph = engine.graph
    per_node_segments = [
        len(engine.walks.segments_starting_at(node)) for node in range(graph.num_nodes)
    ]
    for _, segment in engine.walks.iter_segments():
        for a, b in zip(segment.nodes, segment.nodes[1:]):
            assert graph.has_edge(a, b), "segment uses a non-existent edge"
        if segment.end_reason == END_DANGLING:
            assert graph.out_degree(segment.nodes[-1]) == 0, (
                "DANGLING segment at a node that has out-edges"
            )
    return (graph.num_nodes, sorted(graph.edges()), per_node_segments)


class TestStructuralEquivalence:
    @given(edge_ops, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_batch_path_matches_sequential_structure(self, ops, seed):
        events = _toggle_stream(ops)

        sequential = _fresh_engine(seed)
        for event in events:
            sequential.apply(event)

        batched = _fresh_engine(seed)
        batched.apply_batch(events)

        assert _structural_signature(batched) == _structural_signature(
            sequential
        )

    @given(
        edge_ops,
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_slice_size_is_structurally_irrelevant(self, ops, batch_size, seed):
        events = _toggle_stream(ops)
        whole = _fresh_engine(seed)
        whole.apply_batch(events)
        chunked = _fresh_engine(seed)
        for chunk in slice_events(events, batch_size):
            chunked.apply_batch(chunk)
        assert _structural_signature(chunked) == _structural_signature(whole)

    def test_single_event_batch_matches_apply(self):
        # a 1-event batch exercises exactly the sequential repair semantics
        for seed in (0, 1, 2, 3):
            one = _fresh_engine(seed)
            one.apply_batch([ArrivalEvent("add", 0, 1)])
            per_edge = _fresh_engine(seed)
            per_edge.apply(ArrivalEvent("add", 0, 1))
            assert _structural_signature(one) == _structural_signature(
                per_edge
            )

    def test_remove_then_readd_resumes_dangling(self):
        engine = _fresh_engine(11)
        engine.apply_batch([ArrivalEvent("add", 0, 1), ArrivalEvent("add", 1, 2)])
        # strand node 1's walks, then un-dangle it in a later batch
        engine.apply_batch([ArrivalEvent("remove", 1, 2)])
        assert engine.graph.out_degree(1) == 0
        _structural_signature(engine)
        report = engine.apply_batch([ArrivalEvent("add", 1, 3)])
        _structural_signature(engine)
        # every segment pending at 1 must have resumed through the new edge
        for _, segment in engine.walks.iter_segments():
            if segment.end_reason == END_DANGLING:
                assert segment.nodes[-1] != 1
        assert report.segments_rerouted > 0


class TestReportAggregation:
    def test_empty_batch(self):
        engine = _fresh_engine(1)
        report = engine.apply_batch([])
        assert report.num_events == 0
        assert report.work == 0
        assert not report.store_called

    def test_counters_add_up(self):
        engine = _fresh_engine(5)
        events = _toggle_stream(
            [(0, 1), (1, 2), (2, 3), (0, 1), (3, 4), (1, 2), (4, 5)]
        )
        report = engine.apply_batch(events)
        assert report.num_events == len(events)
        assert report.num_adds + report.num_removes == len(events)
        assert report.work == report.steps_resimulated + report.steps_discarded
        assert report.store_called == (report.segments_rerouted > 0)
        assert engine.total_work == report.work
        assert engine.arrivals_processed == report.num_adds
        assert engine.removals_processed == report.num_removes

    def test_new_nodes_get_walks_and_init_accounting(self):
        engine = IncrementalPageRank(walks_per_node=4, rng=9)
        report = engine.apply_batch(
            [ArrivalEvent("add", 0, 7), ArrivalEvent("add", 7, 3)]
        )
        assert engine.num_nodes == 8
        assert report.segments_initialized == 8 * 4
        for node in range(8):
            assert len(engine.walks.segments_starting_at(node)) == 4
        _structural_signature(engine)

    def test_store_traffic_billed_per_batch(self):
        engine = _fresh_engine(3)
        events = [ArrivalEvent("add", 0, 1), ArrivalEvent("add", 0, 2)]
        social_before = engine.social_store.stats.snapshot()
        pagerank_before = engine.pagerank_store.stats.snapshot()
        report = engine.apply_batch(events)
        social = engine.social_store.stats.delta_since(social_before)
        pagerank = engine.pagerank_store.stats.delta_since(pagerank_before)
        assert social["apply_batch"] == 1
        assert social["add_edge"] == 2
        assert pagerank["apply_batch"] == 1
        if report.segments_rerouted:
            assert pagerank["segments_rewritten"] == report.segments_rerouted


class TestScoreAgreement:
    """Fixed-seed statistical agreement on a medium twitter-like graph."""

    NUM_NODES = 400
    NUM_EDGES = 4800
    WALKS = 10
    EPS = 0.25

    @pytest.fixture(scope="class")
    def engines(self):
        graph = twitter_like_graph(self.NUM_NODES, self.NUM_EDGES, rng=17)
        events = list(RandomPermutationArrival.of_graph(graph, rng=18))

        sequential = IncrementalPageRank(
            walks_per_node=self.WALKS, reset_probability=self.EPS, rng=19
        )
        batched = IncrementalPageRank(
            walks_per_node=self.WALKS, reset_probability=self.EPS, rng=19
        )
        for _ in range(self.NUM_NODES):
            sequential.add_node()
            batched.add_node()
        for event in events:
            sequential.apply(event)
        for chunk in slice_events(events, 400):
            batched.apply_batch(chunk)
        exact = exact_pagerank(graph, reset_probability=self.EPS)
        return sequential, batched, exact

    def test_structures_match(self, engines):
        sequential, batched, _ = engines
        assert _structural_signature(batched) == _structural_signature(
            sequential
        )

    def test_both_paths_track_power_iteration(self, engines):
        sequential, batched, exact = engines
        l1_sequential = float(np.abs(sequential.pagerank() - exact).sum())
        l1_batched = float(np.abs(batched.pagerank() - exact).sum())
        # calibrated once at these seeds; ~0.08 typical, 0.15 is ~2x slack
        assert l1_sequential < 0.15
        assert l1_batched < 0.15

    def test_paths_indistinguishable_from_each_other(self, engines):
        sequential, batched, _ = engines
        gap = float(
            np.abs(sequential.pagerank() - batched.pagerank()).sum()
        )
        # two independent Monte Carlo draws of the same distribution differ
        # by sampling noise only — the same order as their error vs exact
        assert gap < 0.15
        top_sequential = {node for node, _ in sequential.top(50)}
        top_batched = {node for node, _ in batched.top(50)}
        assert len(top_sequential & top_batched) >= 40
