"""Baselines: power iteration vs exact solve, HITS, COSINE, iterative SALSA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cosine import cosine_hub_scores, cosine_scores
from repro.baselines.hits import adjacency_matrix, hits_scores, personalized_hits
from repro.baselines.monte_carlo_static import NaiveMonteCarloRebuild
from repro.baselines.power_iteration import (
    exact_pagerank,
    exact_personalized_pagerank,
    power_iteration_pagerank,
    transition_matrix,
)
from repro.baselines.salsa_iterative import global_salsa, personalized_salsa
from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import directed_cycle, directed_star


class TestPowerIteration:
    def test_matches_exact_solve(self, random_graph):
        exact = exact_pagerank(random_graph, reset_probability=0.2)
        result = power_iteration_pagerank(
            random_graph, reset_probability=0.2, max_iterations=300, tolerance=1e-13
        )
        assert result.converged
        assert np.abs(result.scores - exact).max() < 1e-10

    def test_personalized_matches_exact(self, random_graph):
        seed = 4
        exact = exact_pagerank(random_graph, reset_probability=0.2, personalize=seed)
        result = power_iteration_pagerank(
            random_graph, reset_probability=0.2, personalize=seed, tolerance=1e-13,
            max_iterations=300,
        )
        assert np.abs(result.scores - exact).max() < 1e-10
        assert exact[seed] >= exact.max() * 0.5  # seed dominates its own vector

    def test_dangling_mass_absorbed(self, tiny_graph):
        scores = exact_pagerank(tiny_graph, reset_probability=0.2)
        assert scores.sum() < 1.0
        assert (scores > 0).all()

    def test_no_dangling_sums_to_one(self, cycle_graph):
        scores = exact_pagerank(cycle_graph, reset_probability=0.2)
        assert scores.sum() == pytest.approx(1.0)

    def test_work_accounting(self, random_graph):
        result = power_iteration_pagerank(random_graph, max_iterations=7, tolerance=0)
        assert result.iterations == 7
        assert result.edge_touches == 7 * random_graph.num_edges
        assert not result.converged

    def test_exact_multi_seed_rows(self, random_graph):
        seeds = [0, 3, 9]
        rows = exact_personalized_pagerank(random_graph, seeds, reset_probability=0.2)
        for row, seed in zip(rows, seeds):
            single = exact_pagerank(
                random_graph, reset_probability=0.2, personalize=seed
            )
            assert np.abs(row - single).max() < 1e-10

    def test_empty_graph(self):
        empty = DynamicDiGraph()
        assert exact_pagerank(empty).size == 0
        assert power_iteration_pagerank(empty).scores.size == 0

    def test_validation(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            power_iteration_pagerank(tiny_graph, reset_probability=1.0)
        with pytest.raises(ConfigurationError):
            exact_pagerank(tiny_graph, personalize=99)

    def test_transition_matrix_columns(self, tiny_graph):
        matrix = transition_matrix(tiny_graph)
        # column of node 0 (out-degree 2) sums to 1; dangling column is 0
        assert matrix[:, 0].sum() == pytest.approx(1.0)
        assert matrix[:, 3].sum() == 0.0


class TestNaiveRebuild:
    def test_tracks_work_and_matches_incremental_quality(self):
        naive = NaiveMonteCarloRebuild(10, walks_per_node=3, rng=0)
        events = [ArrivalEvent("add", i, (i + 1) % 10) for i in range(10)]
        naive.process(events)
        assert naive.rebuilds == 10
        # total work ~ sum over rebuilds of n*R/eps-ish; must exceed one build
        assert naive.total_work > 10 * 3
        scores = naive.pagerank()
        assert scores.sum() == pytest.approx(1.0, abs=0.2)

    def test_removal_events(self):
        naive = NaiveMonteCarloRebuild(5, walks_per_node=2, rng=1)
        naive.apply(ArrivalEvent("add", 0, 1))
        naive.apply(ArrivalEvent("remove", 0, 1))
        assert naive.graph.num_edges == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NaiveMonteCarloRebuild(5, walks_per_node=0)


class TestHITS:
    def test_star_concentrates_authority(self):
        graph = directed_star(8, inward=True)
        _, authority = hits_scores(graph)
        assert authority[0] == pytest.approx(1.0)

    def test_personalized_seed_weight(self, random_graph):
        hub, authority = personalized_hits(random_graph, 3, reset_probability=0.3)
        assert hub[3] > np.median(hub)
        assert authority.sum() == pytest.approx(1.0)
        assert hub.sum() == pytest.approx(1.0)

    def test_validation(self, random_graph):
        with pytest.raises(ConfigurationError):
            personalized_hits(random_graph, 999)
        with pytest.raises(ConfigurationError):
            personalized_hits(random_graph, 0, iterations=0)

    def test_adjacency_matrix(self, tiny_graph):
        matrix = adjacency_matrix(tiny_graph)
        assert matrix[0, 1] == 1.0
        assert matrix[1, 0] == 0.0
        assert matrix.sum() == tiny_graph.num_edges


class TestCosine:
    def test_hand_computed_similarity(self):
        # u=0 follows {1,2}; v=3 follows {1,2,4}: cos = 2/sqrt(2*3)
        graph = DynamicDiGraph.from_edges(
            [(0, 1), (0, 2), (3, 1), (3, 2), (3, 4)]
        )
        hubs = cosine_hub_scores(graph, 0)
        assert hubs[3] == pytest.approx(2 / np.sqrt(6))
        assert 0 not in hubs

    def test_authority_aggregation(self):
        graph = DynamicDiGraph.from_edges(
            [(0, 1), (0, 2), (3, 1), (3, 2), (3, 4)]
        )
        authority = cosine_scores(graph, 0)
        # node 4 is endorsed only by hub 3
        assert authority[4] == pytest.approx(2 / np.sqrt(6))
        assert authority[1] == authority[2] == pytest.approx(2 / np.sqrt(6))

    def test_no_friends_no_scores(self):
        graph = DynamicDiGraph.from_edges([(1, 0)])
        assert cosine_hub_scores(graph, 0) == {}
        assert cosine_scores(graph, 0).sum() == 0.0


class TestIterativeSALSA:
    def test_global_authority_tracks_indegree_small_eps(self, random_graph):
        _, authority = global_salsa(
            random_graph, reset_probability=0.001, iterations=200
        )
        authority = authority / authority.sum()
        expected = random_graph.in_degree_array() / random_graph.num_edges
        assert np.abs(authority - expected).sum() < 0.02

    def test_personalized_mass_near_seed(self, random_graph):
        hub, authority = personalized_salsa(random_graph, 7, reset_probability=0.3)
        assert hub[7] > np.median(hub[hub > 0])
        assert authority.sum() > 0

    def test_cycle_symmetric(self):
        graph = directed_cycle(8)
        hub, authority = global_salsa(graph, reset_probability=0.2)
        assert np.allclose(authority, authority[0])
        assert np.allclose(hub, hub[0])

    def test_validation(self, random_graph):
        with pytest.raises(ConfigurationError):
            personalized_salsa(random_graph, -1)
        with pytest.raises(ConfigurationError):
            personalized_salsa(random_graph, 0, iterations=0)
