"""Command-line front end: ``python -m repro.experiments [ids…]``.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments E-F1 E-MX
    python -m repro.experiments E-F6 --quick
    python -m repro.experiments all --quick --seed 7

``--quick`` shrinks every workload (tiny graphs, few users) so a full pass
finishes in about a minute — useful as a smoke test; EXPERIMENTS.md numbers
come from default-size runs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import get_experiment, list_experiments

#: Parameter overrides applied by --quick, per experiment.
QUICK_OVERRIDES = {
    "E-MX": {"num_nodes": 1000, "num_edges": 12_000},
    "E-F1": {"num_nodes": 1000, "num_edges": 12_000},
    "E-F2": {"num_nodes": 2000, "num_edges": 24_000},
    "E-F3": {"num_nodes": 2000, "num_edges": 24_000, "num_users": 3},
    "E-F4": {"num_nodes": 2000, "num_edges": 24_000, "num_users": 25},
    "E-F5": {
        "num_nodes": 2000,
        "num_edges": 24_000,
        "num_users": 5,
        "true_length": 20_000,
        "query_length": 2000,
    },
    "E-F6": {
        "num_nodes": 2000,
        "num_edges": 24_000,
        "num_users": 4,
        "lengths": (100, 1000, 5000),
    },
    "E-T1": {"num_nodes": 4000, "num_edges": 48_000, "max_users": 10},
    "E-THM1": {"num_nodes": 500, "num_edges": 6000, "walk_counts": (1, 5, 10)},
    "E-THM4": {"num_nodes": 500, "num_edges": 6000},
    "E-PROP5": {"num_nodes": 500, "num_edges": 6000, "deletions": 300},
    "E-DIR": {"num_nodes": 500, "num_edges": 6000},
    "E-ADV": {"sizes": (10, 20), "repetitions": 3},
    "E-THM6": {"num_nodes": 300, "num_edges": 3000},
    "E-SERVE": {
        "num_nodes": 500,
        "num_edges": 6000,
        "num_queries": 300,
        "sustained_queries": 300,
        "walk_length": 600,
    },
    "E-SERVE-MP": {
        "num_nodes": 400,
        "num_edges": 4800,
        "num_queries": 80,
        "sustained_queries": 150,
        "seed_pool_size": 40,
        "walk_length": 200,
        "wave_size": 50,
    },
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids (e.g. E-F1 E-T1), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--quick", action="store_true", help="shrunken workloads (smoke test)"
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    args = parser.parse_args(argv)

    registry = list_experiments()
    if args.list or not args.ids:
        print("available experiments:")
        for experiment_id, driver in registry.items():
            doc = (driver.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"  {experiment_id:10s} {summary}")
        return 0

    requested = list(registry) if args.ids == ["all"] else args.ids
    failures = 0
    for experiment_id in requested:
        driver = get_experiment(experiment_id)
        overrides = dict(QUICK_OVERRIDES.get(experiment_id, {})) if args.quick else {}
        overrides["rng"] = args.seed
        start = time.perf_counter()
        try:
            result = driver(**overrides)
        except Exception as error:  # surface, keep going
            print(f"!! {experiment_id} failed: {error}", file=sys.stderr)
            failures += 1
            continue
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"(elapsed: {elapsed:.1f}s)\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
