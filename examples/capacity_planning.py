#!/usr/bin/env python
"""Capacity planning with the paper's closed forms + the sharded store.

Given a deployment target (users, follows/day, query rate), this script
uses :mod:`repro.core.theory` to budget the walk store and then *measures*
a scaled-down version against a sharded backend with a latency model —
the arithmetic an engineer would do before running this system for real.

Run:  python examples/capacity_planning.py [--target-users 1e8]
"""

from __future__ import annotations

import argparse

from repro.core import theory
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.graph.arrival import RandomPermutationArrival
from repro.store.pagerank_store import PageRankStore
from repro.store.sharded import ShardedGraphBackend
from repro.store.social_store import SocialStore
from repro.workloads.twitter_like import twitter_like_graph


def plan(target_users: float, follows_per_day: float, eps: float, walks: int) -> None:
    print("== closed-form budget (paper formulas) ==")
    init = theory.mc_initialization_work(int(target_users), walks, eps)
    print(f"store initialization:   {init:>16,.0f} walk steps  (nR/eps)")
    daily = walks * target_users / (eps * eps) * (
        theory.harmonic_number(int(follows_per_day))
        / max(theory.harmonic_number(int(target_users * 10)), 1)
    )
    per_arrival_late = theory.thm4_update_work_at(
        int(target_users), walks, eps, int(target_users * 10)
    )
    print(
        f"steady-state cost:      {per_arrival_late:>16.3f} walk steps per follow "
        "(t ≈ 10 edges/user)"
    )
    alpha, c, k = 0.77, 5.0, 20
    s_k = theory.eq4_walk_length(k, int(target_users), alpha, c)
    fetches = theory.cor9_topk_fetch_bound(k, alpha, c, walks)
    print(
        f"top-{k} personalized:    walk {s_k:>12,.0f} steps, "
        f"≤ {fetches:,.0f} store fetches (Cor. 9)"
    )


def measure(nodes: int, edges: int, walks: int, eps: float, seed: int) -> None:
    print("\n== scaled-down measurement (sharded store, latency model) ==")
    graph = twitter_like_graph(nodes, edges, rng=seed)
    backend = ShardedGraphBackend(graph, num_shards=8)
    social = SocialStore(backend)
    store = PageRankStore(social)
    engine = IncrementalPageRank(
        social_store=social,
        reset_probability=eps,
        walks_per_node=walks,
        rng=seed,
        pagerank_store=store,
    )
    engine.initialize()

    # one day of growth = 2% more edges
    growth = list(
        RandomPermutationArrival.of_graph(
            twitter_like_graph(nodes, int(edges * 0.02) + nodes, rng=seed + 1),
            rng=seed,
        )
    )[: int(edges * 0.02)]
    for event in growth:
        if not engine.graph.has_edge(event.source, event.target):
            engine.add_edge(event.source, event.target)
    print(
        f"{len(growth)} arrivals maintained with "
        f"{engine.total_steps_resimulated} resimulated steps "
        f"({engine.total_steps_resimulated / len(growth):.2f}/arrival)"
    )

    query = PersonalizedPageRank(store, rng=seed)
    before = store.fetch_count
    for user in range(40, 40 + 20):
        query.top_k(user, 20, 4000, exclude_friends=True)
    fetches = store.fetch_count - before
    print(f"20 top-20 queries used {fetches} fetches ({fetches / 20:.1f}/query)")

    from repro.store.stats import LatencyModel

    model = LatencyModel(per_operation={"fetch": 0.002}, default_latency=0.0003)
    seconds = model.simulated_seconds(store.stats)
    print(f"simulated store time for those queries: {seconds * 1000:.0f} ms total")
    loads = backend.shard_load()
    print(
        f"shard load: max {max(loads)}, min {min(loads)}, "
        f"imbalance {backend.load_imbalance():.2f}x"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target-users", type=float, default=1e8)
    parser.add_argument("--follows-per-day", type=float, default=1e8)
    parser.add_argument("--walks", type=int, default=10)
    parser.add_argument("--eps", type=float, default=0.2)
    parser.add_argument("--nodes", type=int, default=3000)
    parser.add_argument("--edges", type=int, default=36_000)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    plan(args.target_users, args.follows_per_day, args.eps, args.walks)
    measure(args.nodes, args.edges, args.walks, args.eps, args.seed)


if __name__ == "__main__":
    main()
