"""Multi-seed query kernel vs the per-seed stitched-walk reference.

The ISSUE-5 acceptance: on the Zipf serve workload the batch kernel
(:class:`repro.core.query_kernel.QueryKernel`) sustains **≥5× the
PPR and top-k throughput** of the scalar per-seed reference
(:meth:`~repro.core.personalized.PersonalizedPageRank.stitched_walk` /
:func:`~repro.core.topk.top_k_personalized`) at batch size 64 with the
same per-query RNG streams, while a single B=1 query stays within 1.2×
of the reference's latency (it is in fact faster).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (the CI workflow does).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.query_kernel import QueryKernel
from repro.core.topk import top_k_personalized
from repro.serve.traffic import zipf_seed_sequence
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 1000,
        "num_edges": 12_000,
        "walk_length": 1000,
        "seed_pool": 64,
        "batch_size": 64,
        "k": 10,
        "repeats": 4,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 2000,
        "num_edges": 24_000,
        "walk_length": 2000,
        "seed_pool": 64,
        "batch_size": 64,
        "k": 10,
        "repeats": 4,
        "rng": 42,
    }
)


def _best_of_interleaved(candidates, repeats):
    """Best wall time per candidate, rounds interleaved.

    Interleaving keeps transient machine slowdowns from biasing one side
    of a ratio: every candidate sees every round's conditions.
    """
    best = {name: float("inf") for name in candidates}
    for _ in range(repeats):
        for name, function in candidates.items():
            started = time.perf_counter()
            function()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def run_query_kernel_bench(
    *,
    num_nodes,
    num_edges,
    walk_length,
    seed_pool,
    batch_size,
    k,
    repeats,
    rng,
):
    graph = twitter_like_graph(num_nodes, num_edges, rng=0)
    engine = IncrementalPageRank.from_graph(graph, walks_per_node=10, rng=1)
    store = engine.pagerank_store
    kernel = QueryKernel(
        store, reset_probability=engine.reset_probability
    )
    reference = PersonalizedPageRank(
        store, reset_probability=engine.reset_probability
    )
    seeds = zipf_seed_sequence(batch_size, seed_pool, rng=rng)

    def streams():
        # the serving layer's per-(seed, length) query streams
        return [
            np.random.default_rng([0, seed, walk_length]) for seed in seeds
        ]

    # -- differential guard: batching changes nothing ------------------
    batched = kernel.batch_stitched_walks(seeds, walk_length, rngs=streams())
    singles = [
        kernel.stitched_walk(seed, walk_length, rng=stream)
        for seed, stream in zip(seeds, streams())
    ]
    for one, many in zip(singles, batched):
        assert one.visit_counts == many.visit_counts
        assert one.length == many.length

    timings = _best_of_interleaved(
        {
            "reference ppr": lambda: [
                reference.stitched_walk(seed, walk_length, rng=stream)
                for seed, stream in zip(seeds, streams())
            ],
            "kernel ppr B=64": lambda: kernel.batch_stitched_walks(
                seeds, walk_length, rngs=streams()
            ),
            "kernel ppr B=1": lambda: [
                kernel.stitched_walk(seed, walk_length, rng=stream)
                for seed, stream in zip(seeds, streams())
            ],
            "reference topk": lambda: [
                top_k_personalized(
                    reference, seed, k, length=walk_length, rng=stream
                )
                for seed, stream in zip(seeds, streams())
            ],
            "kernel topk B=64": lambda: kernel.batch_top_k(
                seeds, k, length=walk_length, rngs=streams()
            ),
        },
        repeats,
    )

    return {
        "ppr": {
            "reference qps": batch_size / timings["reference ppr"],
            "kernel B=64 qps": batch_size / timings["kernel ppr B=64"],
            "speedup": timings["reference ppr"] / timings["kernel ppr B=64"],
            "B=1 latency vs reference": (
                timings["kernel ppr B=1"] / timings["reference ppr"]
            ),
        },
        "topk": {
            "reference qps": batch_size / timings["reference topk"],
            "kernel B=64 qps": batch_size / timings["kernel topk B=64"],
            "speedup": (
                timings["reference topk"] / timings["kernel topk B=64"]
            ),
        },
    }


def test_query_kernel_speedup(benchmark, once):
    result = once(benchmark, run_query_kernel_bench, **PARAMS)
    ppr = result["ppr"]
    topk = result["topk"]

    print()
    for shape, row in result.items():
        cells = "  ".join(f"{name} {value:,.2f}" for name, value in row.items())
        print(f"{shape:5s} {cells}")

    # The ISSUE-5 acceptance: >=5x batched throughput for both query
    # shapes, and B=1 latency within 1.2x of the per-seed reference.
    assert ppr["speedup"] >= 5.0
    assert topk["speedup"] >= 5.0
    assert ppr["B=1 latency vs reference"] <= 1.2
