"""E-T1: link-prediction benchmark (Appendix A, Table 1).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workload,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os

from repro.experiments.exp_linkpred import run_table1

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {"num_nodes": 2000, "num_edges": 24_000, "max_users": 4, "rng": 42}
    if FAST_MODE
    else {"num_nodes": 10_000, "num_edges": 120_000, "max_users": 15, "rng": 42}
)


def test_e_t1(benchmark, once):
    result = once(benchmark, run_table1, **PARAMS)
    table = {row["method"]: row for row in result.rows}
    if not FAST_MODE:
        # Table 1's shape on the scale-honest (long-tail) view: random-walk
        # methods beat COSINE, and everyone beats HITS clearly.
        hits = table["HITS"]["long-tail top 100"]
        cosine = table["COSINE"]["long-tail top 100"]
        pagerank = table["PageRank"]["long-tail top 100"]
        salsa = table["SALSA"]["long-tail top 100"]
        assert pagerank > hits
        assert salsa > hits
        assert max(pagerank, salsa) >= cosine * 0.8  # walks match COSINE
        assert max(pagerank, salsa) > 1.8 * max(hits, 0.05)  # and crush HITS
        # Full-table ordering is monotone in the same direction.
        assert table["PageRank"]["top 100"] > table["HITS"]["top 100"]
        # The Monte Carlo production path tracks its iterative reference.
        assert (
            table["PageRank (MC walks)"]["top 1000"]
            > 0.5 * table["PageRank"]["top 1000"]
        )
    print()
    print(result.render())
