"""Vectorized multi-seed PPR query kernel — batch walk stitching (DESIGN.md §10).

PRs 1–4 vectorized walk *building* and *repair*; this module vectorizes the
paper's §3 query path.  The scalar reference
(:meth:`repro.core.personalized.PersonalizedPageRank.stitched_walk`) runs
Algorithm 1 one Python step at a time: a scalar RNG call per coin, a store
fetch materializing every segment as a Python list once per walk, and one
``Counter`` update per visited node.  Serving throughput is therefore
bounded by the interpreter, not the hardware.  :class:`QueryKernel`
advances ``B`` concurrent stitched walks as frontier passes and moves all
O(visits) work into numpy:

* **Per-stream block RNG** — each walk consumes uniforms from its own
  generator in blocks of :attr:`rng_block` draws instead of one scalar
  call per coin; a plain step's neighbour choice spends one uniform
  (``int(u · d)``, the same draw :func:`repro.graph.csr.batch_reset_walks`
  uses) instead of a scalar ``Generator.integers`` call.
* **Bulk segment lookup** — node payloads (adjacency + stored segment
  tails) are loaded **once per batch** through
  :meth:`~repro.core.walks.WalkIndex.segment_views_starting_at`: zero-copy
  arena views on the columnar backend, a single-shard gather on
  :class:`~repro.core.sharded_walks.ShardedWalkIndex`.  The reference pays
  this materialization once per walk per node.
* **Vectorized visit accumulation** — a splice appends the segment's
  arena *view* to a chunk list (O(1) Python work regardless of segment
  length); all per-walk visit counts are reduced at the end with one
  combined-key sort + run-length encode + ``np.bincount`` pass, never a
  per-visit ``Counter`` update.

**RNG stream contract (normative).**  Each query walks with its own
``np.random.Generator`` stream — by default spawned from the query's
identity, ``default_rng([rng_seed, seed, length])``, exactly the serving
layer's :meth:`~repro.serve.engine.QueryEngine.query_rng` — and only that
walk consumes from it.  Results are therefore reproducible and
**independent of batch composition**: a query returns bit-identical visit
counts whether it runs alone, in any batch, in any position, on any
:class:`~repro.core.walks.WalkIndex` backend (the normative enumeration
orders make the consumed store state identical across backends).

**Relation to the reference.**  The kernel consumes its streams in the
same trajectory order as the reference (one uniform per ε-coin, then one
per plain step) but the reference draws plain steps via
``Generator.integers``, which consumes raw bit-stream words rather than
doubles.  Kernel and reference walks are therefore *distributionally*
equivalent in general, and **bit-identical whenever the walk takes no
plain step** (every visited node still holds an unused segment, or is
dangling) — then both sides consume only ε-coin doubles, in the same
order.  ``tests/test_query_kernel.py`` pins both properties down.

Fetch accounting: ``StitchedWalkResult.fetches`` / ``cached_fetches``
count per-walk first visits exactly as a sequential reference replay
(through the same shared :class:`~repro.core.personalized.FetchCache`, if
one is given) would have counted them, while
:attr:`PageRankStore.stats <repro.store.pagerank_store.PageRankStore>`
bills only the *physical* fetches the kernel actually performed — one per
distinct node per batch — because not re-fetching is precisely the win.
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.core import theory
from repro.core.personalized import (
    FetchCache,
    StitchedWalkResult,
    _FetchedState,
)
from repro.core.reverse_push import (
    BidirectionalKernel,
    PprToTargetResult,
    default_r_max,
    default_walk_length,
)
from repro.core.salsa import SalsaWalkResult
from repro.core.topk import TopKResult, walk_length_for_top_k
from repro.core.walks import SIDE_HUB
from repro.errors import ConfigurationError
from repro.obs.profile import StageProfiler
from repro.rng import RngLike, ensure_rng
from repro.store.pagerank_store import FETCH_FULL, PageRankStore

__all__ = ["QueryKernel", "SalsaQueryKernel"]

#: Uniforms drawn per refill of a walk's private stream buffer.
_DEFAULT_RNG_BLOCK = 256


class _NodeInfo:
    """Per-batch shared payload of one fetched node (PPR)."""

    __slots__ = ("nseg", "views", "sizes", "neighbors", "degree", "cached")

    def __init__(self, views, neighbors, degree, cached):
        self.nseg = len(views)
        #: Whole-segment views; splicing records the view as-is and the
        #: assembly pass drops each view's leading source node, so no
        #: per-segment tail slices are ever created.
        self.views = views
        #: Visits a splice adds: the tail plus the post-segment seed visit
        #: (== the full segment length).
        self.sizes = [view.shape[0] for view in views]
        self.neighbors = neighbors
        self.degree = degree
        #: Whether a sequential reference replay would find this node in
        #: the shared fetch cache (flips True after the first walk pays).
        self.cached = cached


class _SalsaNodeInfo:
    """Per-batch shared payload of one fetched node (SALSA, both sides)."""

    __slots__ = ("pools", "sizes", "out_neighbors", "in_neighbors", "degrees")

    def __init__(self, forward, backward, out_neighbors, in_neighbors):
        #: pools[side]: whole-segment views in fetch order; consumed from
        #: the END (matching the reference's ``pool.pop()``).
        self.pools = (forward, backward)
        self.sizes = (len(forward), len(backward))
        self.out_neighbors = out_neighbors
        self.in_neighbors = in_neighbors
        self.degrees = (len(out_neighbors), len(in_neighbors))


def _counts_per_walk(
    owner_parts: list[np.ndarray],
    node_parts: list[np.ndarray],
    num_walks: int,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Reduce (walk, node) visit events to per-walk ``(nodes, counts)``.

    One ``lexsort`` + run-length encode over every recorded visit of the
    batch — the ``np.bincount``-style accumulation that replaces the
    reference's per-visit ``Counter`` updates.
    """
    empty = np.zeros(0, dtype=np.int64)
    if not owner_parts:
        return [(empty, empty)] * num_walks
    owners = np.concatenate(owner_parts)
    nodes = np.concatenate(node_parts)
    total = owners.size
    if total == 0:  # e.g. every spliced segment was single-node
        return [(empty, empty)] * num_walks
    max_node = int(nodes.max())
    shift = max(max_node + 1, 1).bit_length()
    if shift + max(num_walks, 1).bit_length() < 63:
        # one single-key sort beats a two-key lexsort; decode afterwards
        combined = np.sort((owners << shift) | nodes)
        owners = combined >> shift
        nodes = combined & ((1 << shift) - 1)
    else:  # pragma: no cover - astronomically wide id spaces
        order = np.lexsort((nodes, owners))
        owners = owners[order]
        nodes = nodes[order]
    change = np.empty(total, dtype=bool)
    change[0] = True
    change[1:] = (owners[1:] != owners[:-1]) | (nodes[1:] != nodes[:-1])
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, total))
    entry_owner = owners[starts]
    entry_node = nodes[starts]
    rows = np.bincount(entry_owner, minlength=num_walks)
    boundaries = np.cumsum(rows)[:-1]
    return list(
        zip(np.split(entry_node, boundaries), np.split(counts, boundaries))
    )


def _per_walk_visit_counts(
    num_walks: int,
    chunk_counts,
    chunk_tails,
    step_counts,
    step_nodes,
) -> tuple[list[tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Reduce the raw event streams to per-walk ``(nodes, counts)`` plus
    per-walk spliced-step totals (seed visits excluded — the caller adds
    them, or skips them when the seed is excluded from a ranking)."""
    walk_ids = np.arange(num_walks, dtype=np.int64)
    owner_parts: list[np.ndarray] = []
    node_parts: list[np.ndarray] = []
    segment_steps = np.zeros(num_walks, dtype=np.int64)
    if chunk_tails:
        lens = np.fromiter(
            (view.shape[0] for view in chunk_tails),
            dtype=np.int64,
            count=len(chunk_tails),
        )
        per_chunk_owner = np.repeat(
            walk_ids, np.asarray(chunk_counts, dtype=np.int64)
        )
        tail_lens = lens - 1
        owner_parts.append(np.repeat(per_chunk_owner, tail_lens))
        # chunks are whole segments; drop each one's leading source
        # (only its tail was spliced into the walk)
        nodes = np.concatenate(chunk_tails)
        keep = np.ones(nodes.size, dtype=bool)
        keep[np.cumsum(lens) - lens] = False
        node_parts.append(nodes[keep])
        segment_steps = np.bincount(
            per_chunk_owner, weights=tail_lens, minlength=num_walks
        ).astype(np.int64)
    if step_nodes:
        owner_parts.append(
            np.repeat(walk_ids, np.asarray(step_counts, dtype=np.int64))
        )
        node_parts.append(np.asarray(step_nodes, dtype=np.int64))
    return _counts_per_walk(owner_parts, node_parts, num_walks), segment_steps


def _rank_arrays(
    nodes: np.ndarray, visits: np.ndarray, k: int, excluded
) -> list[tuple[int, int]]:
    """``StitchedWalkResult.top``'s exact ranking, computed on arrays.

    Sort key ``(-visits, node)`` — identical output to the Counter path,
    one ``lexsort`` instead of a per-item Python comparison sort.
    """
    if excluded:
        keep = ~np.isin(
            nodes, np.fromiter(excluded, dtype=np.int64, count=len(excluded))
        )
        nodes = nodes[keep]
        visits = visits[keep]
    order = np.lexsort((nodes, -visits))[:k]
    return list(zip(nodes[order].tolist(), visits[order].tolist()))


def _derived_rngs(
    seeds: Sequence[int], lengths: Sequence[int], rng_seed: int
) -> list[np.random.Generator]:
    """The default per-query streams: ``default_rng([rng_seed, seed, len])``."""
    return [
        np.random.default_rng([rng_seed, int(seed), int(length)])
        for seed, length in zip(seeds, lengths)
    ]


class QueryKernel:
    """Batch Algorithm-1 walk stitching over a :class:`PageRankStore`."""

    def __init__(
        self,
        pagerank_store: PageRankStore,
        *,
        reset_probability: float = 0.2,
        rng_block: int = _DEFAULT_RNG_BLOCK,
        registry=None,
        tracer=None,
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        if pagerank_store.fetch_mode != FETCH_FULL:
            raise ConfigurationError(
                "QueryKernel requires fetch_mode='full' (sampled_edge fetches "
                "are single-use draws; use the scalar reference walker)"
            )
        if rng_block < 2:
            raise ConfigurationError(
                f"rng_block must be at least 2, got {rng_block}"
            )
        self.store = pagerank_store
        self.reset_probability = reset_probability
        self.rng_block = rng_block
        #: Observability plane (DESIGN.md §12).  With a registry attached,
        #: stage profiling (rng_draw / segment_gather / reduce) activates
        #: at REPRO_OBS >= 1; spans (kernel.batch, store.fetch) at >= 2 via
        #: the tracer.  With neither, the hot loop is untouched.
        self.tracer = tracer
        if registry is not None:
            self.profiler = StageProfiler(
                registry,
                metric="repro_kernel_stage_seconds",
                documentation="Wall-clock seconds per query-kernel stage",
            )
            self._batch_counter = registry.counter(
                "repro_kernel_batches_total", "Multi-seed kernel invocations"
            )
            self._walk_counter = registry.counter(
                "repro_kernel_walks_total", "Walks executed by kernel batches"
            )
            self._reverse_push_counter = registry.counter(
                "repro_kernel_reverse_push_total",
                "Reverse local-push frontier sweeps (one per distinct target)",
            )
        else:
            self.profiler = None
            self._batch_counter = None
            self._walk_counter = None
            self._reverse_push_counter = None

    # ------------------------------------------------------------------
    # Node payloads (one physical fetch per node per batch)
    # ------------------------------------------------------------------

    def _load_node(
        self,
        node: int,
        fetch_cache: Optional[FetchCache],
        cache_guard: int,
    ) -> _NodeInfo:
        """Load one node's payload; *physical* fetches are billed in bulk
        by the caller (one ``stats.record("fetch", n)`` per batch)."""
        payload = fetch_cache.lookup(node) if fetch_cache is not None else None
        if payload is not None:
            views = [
                np.asarray(segment, dtype=np.int64)
                for segment in payload.segments
            ]
            return _NodeInfo(
                views, list(payload.neighbors), payload.out_degree, True
            )
        store = self.store
        tracer = self.tracer
        # start_leaf/finish_leaf, not span(): a fetch span has no
        # children, and the cheap path is what keeps full tracing
        # inside the DESIGN §12 overhead budget.
        span = (
            tracer.start_leaf("store.fetch", node=node)
            if tracer is not None
            else None
        )
        views = store.walks.segment_views_starting_at(node)
        neighbors = list(store.social_store.out_neighbors(node))
        if span is not None:
            tracer.finish_leaf(span)
        if fetch_cache is not None:
            fetch_cache.store(
                node,
                _FetchedState(
                    neighbors=list(neighbors),
                    segments=[view.tolist() for view in views],
                    out_degree=len(neighbors),
                ),
                guard_version=cache_guard,
            )
        return _NodeInfo(views, neighbors, len(neighbors), False)

    # ------------------------------------------------------------------
    # The batch engine
    # ------------------------------------------------------------------

    def batch_stitched_walks(
        self,
        seeds: Sequence[int],
        lengths,
        *,
        rngs: Optional[Sequence[RngLike]] = None,
        rng_seed: int = 0,
        use_segments: bool = True,
        fetch_cache: Optional[FetchCache] = None,
    ) -> list[StitchedWalkResult]:
        """Run one Algorithm-1 walk per entry of ``seeds``, batched.

        ``lengths`` is one target length for the whole batch or one per
        seed.  ``rngs`` supplies each walk's private stream; by default
        streams are derived from the query identity (see the module
        docstring's RNG contract).  Walks may overshoot their target by a
        final segment splice, exactly like the reference.
        """
        seeds = [int(seed) for seed in seeds]
        num_walks = len(seeds)
        if isinstance(lengths, (int, np.integer)):
            targets = [int(lengths)] * num_walks
        else:
            targets = [int(length) for length in lengths]
            if len(targets) != num_walks:
                raise ConfigurationError(
                    f"{num_walks} seeds but {len(targets)} lengths"
                )
        for target in targets:
            if target <= 0:
                raise ConfigurationError(
                    f"length must be positive, got {target}"
                )
        if fetch_cache is not None and self.store.fetch_mode != FETCH_FULL:
            raise ConfigurationError(
                "fetch_cache requires a store with fetch_mode='full'"
            )
        if rngs is None:
            generators = _derived_rngs(seeds, targets, rng_seed)
        else:
            if len(rngs) != num_walks:
                raise ConfigurationError(
                    f"{num_walks} seeds but {len(rngs)} rngs"
                )
            generators = [ensure_rng(rng) for rng in rngs]
        if num_walks == 0:
            return []
        tracer = self.tracer
        span = (
            tracer.span("kernel.batch", walks=num_walks)
            if tracer is not None and tracer.enabled
            else nullcontext()
        )
        with span:
            if self._batch_counter is not None:
                self._batch_counter.inc()
                self._walk_counter.inc(num_walks)
            raw = self._run(seeds, targets, generators, use_segments, fetch_cache)
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                start = perf_counter()
                results = self._assemble(*raw)
                profiler.record("reduce", perf_counter() - start)
            else:
                results = self._assemble(*raw)
        return results

    def _run(self, seeds, targets, generators, use_segments, fetch_cache):
        """Advance every walk to completion; returns the raw event streams."""
        num_walks = len(seeds)
        eps = self.reset_probability
        block = self.rng_block
        cache_guard = fetch_cache.version if fetch_cache is not None else 0
        shared_fetch = fetch_cache is not None
        # Stage profiling (REPRO_OBS >= 1): the enabled check runs once per
        # batch; when off, the per-step path gains exactly one branch at
        # each (rare) RNG-refill and first-visit site.
        profiler = self.profiler
        profiling = profiler is not None and profiler.enabled
        rng_time = 0.0
        gather_time = 0.0

        # Per-walk scalar outputs (data-plane events below stay arrays).
        visited = [0] * num_walks
        resets = [0] * num_walks
        splices = [0] * num_walks
        plain = [0] * num_walks
        fetches = [0] * num_walks
        cached = [0] * num_walks
        # Per-walk event streams, flat across the batch: splice tails and
        # plain-step visits, grouped by walk (walks run to completion one
        # after another — their streams are private, so any schedule
        # produces the same results; sequential keeps the control plane in
        # local variables).
        chunk_counts = [0] * num_walks
        chunk_tails: list[np.ndarray] = []
        step_counts = [0] * num_walks
        step_nodes: list[int] = []

        node_info: dict[int, _NodeInfo] = {}
        node_info_get = node_info.get
        load_node = self._load_node
        tails_append = chunk_tails.append
        steps_append = step_nodes.append
        physical_loads = 0

        for walk in range(num_walks):
            seed = seeds[walk]
            target = targets[walk]
            random_block = generators[walk].random
            buffer: list[float] = []
            buffer_len = 0
            position = 0
            count = 1  # the initial seed visit
            # splices and plain steps are derived from the event-stream
            # length deltas below — the hot branches only append
            chunks_before = len(chunk_tails)
            steps_before = len(step_nodes)
            resets_w = 0  # coin + dangling resets (splices added at the end)
            fetches_w = 0
            cached_w = 0
            # The walk's position: every splice and reset returns to the
            # seed, so the seed-resident phase dominates — its cursor and
            # payload columns live in locals, skipping every dict and
            # attribute lookup on that path.
            at_seed = True
            node = seed
            seed_cursor = -1
            seed_nseg = 0
            seed_views: list = []
            seed_sizes: list = []
            seed_neighbors: list = []
            seed_degree = 0
            # per-node walk state: [cursor, _NodeInfo] (one dict lookup)
            cursors: dict[int, list] = {}
            cursors_get = cursors.get

            while count < target:
                if position >= buffer_len:
                    if profiling:
                        stamp = perf_counter()
                        buffer = random_block(block).tolist()
                        rng_time += perf_counter() - stamp
                    else:
                        buffer = random_block(block).tolist()
                    buffer_len = block
                    position = 0
                coin = buffer[position]
                position += 1
                if coin < eps:
                    resets_w += 1
                    count += 1
                    at_seed = True
                    continue
                if at_seed:
                    if seed_cursor < 0:
                        # first visit: the fetch pass (re-enters with the
                        # node in memory and re-flips the coin)
                        seed_info = node_info_get(seed)
                        if seed_info is None:
                            if profiling:
                                stamp = perf_counter()
                                seed_info = load_node(
                                    seed, fetch_cache, cache_guard
                                )
                                gather_time += perf_counter() - stamp
                            else:
                                seed_info = load_node(
                                    seed, fetch_cache, cache_guard
                                )
                            node_info[seed] = seed_info
                            if not seed_info.cached:
                                physical_loads += 1
                        if seed_info.cached:
                            cached_w += 1
                        else:
                            fetches_w += 1
                            if shared_fetch:
                                # a sequential replay would now hit the cache
                                seed_info.cached = True
                        seed_cursor = 0
                        seed_nseg = seed_info.nseg if use_segments else 0
                        seed_views = seed_info.views
                        seed_sizes = seed_info.sizes
                        seed_neighbors = seed_info.neighbors
                        seed_degree = seed_info.degree
                        continue
                    if seed_cursor < seed_nseg:
                        # splice: appending the view IS the accounting
                        # (ends in the segment's own reset back to seed)
                        tails_append(seed_views[seed_cursor])
                        count += seed_sizes[seed_cursor]
                        seed_cursor += 1
                        continue
                    if seed_degree == 0:
                        resets_w += 1  # dangling: reset to the seed
                        count += 1
                        continue
                    if position >= buffer_len:
                        if profiling:
                            stamp = perf_counter()
                            buffer = random_block(block).tolist()
                            rng_time += perf_counter() - stamp
                        else:
                            buffer = random_block(block).tolist()
                        buffer_len = block
                        position = 0
                    node = seed_neighbors[int(buffer[position] * seed_degree)]
                    position += 1
                    steps_append(node)
                    count += 1
                    at_seed = node == seed
                    continue
                entry = cursors_get(node)
                if entry is None:
                    info = node_info_get(node)
                    if info is None:
                        if profiling:
                            stamp = perf_counter()
                            info = load_node(node, fetch_cache, cache_guard)
                            gather_time += perf_counter() - stamp
                        else:
                            info = load_node(node, fetch_cache, cache_guard)
                        node_info[node] = info
                        if not info.cached:
                            physical_loads += 1
                    if info.cached:
                        cached_w += 1
                    else:
                        fetches_w += 1
                        if shared_fetch:
                            info.cached = True
                    cursors[node] = [0, info]
                    continue
                cursor, info = entry
                if use_segments and cursor < info.nseg:
                    entry[0] = cursor + 1
                    tails_append(info.views[cursor])
                    count += info.sizes[cursor]
                    at_seed = True
                elif info.degree == 0:
                    resets_w += 1
                    count += 1
                    at_seed = True
                else:
                    if position >= buffer_len:
                        if profiling:
                            stamp = perf_counter()
                            buffer = random_block(block).tolist()
                            rng_time += perf_counter() - stamp
                        else:
                            buffer = random_block(block).tolist()
                        buffer_len = block
                        position = 0
                    node = info.neighbors[int(buffer[position] * info.degree)]
                    position += 1
                    steps_append(node)
                    count += 1
                    at_seed = node == seed

            splices_w = len(chunk_tails) - chunks_before
            visited[walk] = count
            resets[walk] = resets_w + splices_w  # each splice ends in a reset
            splices[walk] = splices_w
            plain[walk] = len(step_nodes) - steps_before
            fetches[walk] = fetches_w
            cached[walk] = cached_w
            chunk_counts[walk] = splices_w
            step_counts[walk] = plain[walk]

        if physical_loads:
            self.store.stats.record("fetch", physical_loads)
        if profiling:
            profiler.record("rng_draw", rng_time)
            profiler.record("segment_gather", gather_time)
        return (
            seeds,
            visited,
            resets,
            splices,
            plain,
            fetches,
            cached,
            chunk_counts,
            chunk_tails,
            step_counts,
            step_nodes,
        )

    def _assemble(
        self,
        seeds,
        visited,
        resets,
        splices,
        plain,
        fetches,
        cached,
        chunk_counts,
        chunk_tails,
        step_counts,
        step_nodes,
    ) -> list[StitchedWalkResult]:
        """Reduce the recorded event streams to per-walk results, vectorized.

        ``chunk_tails`` / ``step_nodes`` are flat event streams grouped by
        walk (``chunk_counts`` / ``step_counts`` delimit them); owners are
        reconstructed with one ``np.repeat`` per stream and all visit
        counts reduce in a single lexsort + run-length-encode pass.
        """
        num_walks = len(seeds)
        per_walk, segment_steps = _per_walk_visit_counts(
            num_walks, chunk_counts, chunk_tails, step_counts, step_nodes
        )

        results = []
        for walk, seed in enumerate(seeds):
            nodes_b, counts_b = per_walk[walk]
            visit_counts: Counter = Counter()
            # plain dict fill (no Counter.update dispatch, no intermediate)
            dict.update(
                visit_counts, zip(nodes_b.tolist(), counts_b.tolist())
            )
            # every reset revisited the seed, plus the initial visit
            visit_counts[seed] += resets[walk] + 1
            results.append(
                StitchedWalkResult(
                    seed=seed,
                    length=visited[walk],
                    visit_counts=visit_counts,
                    fetches=fetches[walk],
                    segments_used=splices[walk],
                    segment_steps=int(segment_steps[walk]),
                    plain_steps=plain[walk],
                    resets=resets[walk],
                    cached_fetches=cached[walk],
                )
            )
        return results

    # ------------------------------------------------------------------
    # Query shapes
    # ------------------------------------------------------------------

    def stitched_walk(
        self,
        seed: int,
        length: int,
        *,
        rng: RngLike = None,
        rng_seed: int = 0,
        use_segments: bool = True,
        fetch_cache: Optional[FetchCache] = None,
    ) -> StitchedWalkResult:
        """The B=1 batch — same signature shape as the scalar reference.

        Identical to the walk's result inside any larger batch (the
        composition-independence contract), and the serving layer's B=1
        latency path.
        """
        rngs = None if rng is None else [rng]
        return self.batch_stitched_walks(
            [seed],
            length,
            rngs=rngs,
            rng_seed=rng_seed,
            use_segments=use_segments,
            fetch_cache=fetch_cache,
        )[0]

    def batch_scores(
        self,
        seeds: Sequence[int],
        length: int,
        *,
        rngs: Optional[Sequence[RngLike]] = None,
        rng_seed: int = 0,
        fetch_cache: Optional[FetchCache] = None,
    ) -> np.ndarray:
        """Personalized PageRank estimates, one dense row per seed.

        Row ``i`` equals
        ``batch_stitched_walks(...)[i].frequencies(num_nodes)`` — computed
        without materializing per-walk ``Counter`` objects into a loop.
        """
        walks = self.batch_stitched_walks(
            seeds, length, rngs=rngs, rng_seed=rng_seed, fetch_cache=fetch_cache
        )
        num_nodes = self.store.social_store.num_nodes
        matrix = np.zeros((len(walks), num_nodes), dtype=np.float64)
        for row, walk in enumerate(walks):
            matrix[row] = walk.frequencies(num_nodes)
        return matrix

    def batch_top_k(
        self,
        seeds: Sequence[int],
        k: int,
        *,
        alpha: float = 0.77,
        c: float = 5.0,
        exclude_friends: bool = True,
        length: Optional[int] = None,
        rngs: Optional[Sequence[RngLike]] = None,
        rng_seed: int = 0,
        fetch_cache: Optional[FetchCache] = None,
    ) -> list[TopKResult]:
        """Top-``k`` rankings for many seeds in one kernel invocation.

        Mirrors :func:`repro.core.topk.top_k_personalized` per seed
        (Equation-4 walk sizing, seed/friend exclusion, Corollary-9
        bound); ``fetches`` reports the walk's first-visit count — the
        cost a per-walk serving tier would have paid.  Rankings are
        computed straight from the kernel's reduced count arrays (the
        seed — always excluded — never needs its Counter materialized),
        and are identical to ``batch_stitched_walks(...)[i].top(k, ...)``.
        """
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        social = self.store.social_store
        walk_length = (
            length
            if length is not None
            else walk_length_for_top_k(k, social.num_nodes, alpha, c)
        )
        seeds = [int(seed) for seed in seeds]
        if walk_length <= 0:
            raise ConfigurationError(
                f"length must be positive, got {walk_length}"
            )
        if rngs is None:
            generators = _derived_rngs(
                seeds, [walk_length] * len(seeds), rng_seed
            )
        else:
            if len(rngs) != len(seeds):
                raise ConfigurationError(
                    f"{len(seeds)} seeds but {len(rngs)} rngs"
                )
            generators = [ensure_rng(rng) for rng in rngs]
        if not seeds:
            return []
        tracer = self.tracer
        span = (
            tracer.span("kernel.batch", walks=len(seeds), kind="top_k")
            if tracer is not None and tracer.enabled
            else nullcontext()
        )
        with span:
            if self._batch_counter is not None:
                self._batch_counter.inc()
                self._walk_counter.inc(len(seeds))
            raw = self._run(
                seeds, [walk_length] * len(seeds), generators, True, fetch_cache
            )
            fetches = raw[5]
            chunk_counts, chunk_tails, step_counts, step_nodes = raw[7:]
            profiler = self.profiler
            if profiler is not None and profiler.enabled:
                start = perf_counter()
                per_walk, _ = _per_walk_visit_counts(
                    len(seeds), chunk_counts, chunk_tails, step_counts, step_nodes
                )
                profiler.record("reduce", perf_counter() - start)
            else:
                per_walk, _ = _per_walk_visit_counts(
                    len(seeds), chunk_counts, chunk_tails, step_counts, step_nodes
                )
        results = []
        for walk_index, seed in enumerate(seeds):
            excluded = {seed}
            if exclude_friends:
                excluded.update(social.out_neighbors(seed))
            walks_at_seed = max(
                len(self.store.walks.segments_starting_at(seed)), 1
            )
            nodes_b, counts_b = per_walk[walk_index]
            results.append(
                TopKResult(
                    seed=seed,
                    k=k,
                    ranking=_rank_arrays(nodes_b, counts_b, k, excluded),
                    walk_length=walk_length,
                    fetches=fetches[walk_index],
                    fetch_bound=theory.cor9_topk_fetch_bound(
                        k, alpha, c, walks_at_seed
                    ),
                    alpha=alpha,
                    c=c,
                )
            )
        return results

    def batch_ppr_to_target(
        self,
        seeds: Sequence[int],
        target: int,
        delta: float,
        *,
        r_max: Optional[float] = None,
        walk_length: Optional[int] = None,
        rngs: Optional[Sequence[RngLike]] = None,
        rng_seed: int = 0,
        fetch_cache: Optional[FetchCache] = None,
    ) -> list[PprToTargetResult]:
        """FAST-PPR bidirectional ``pi_seed(target)`` estimates, batched.

        One reverse push from ``target`` (tolerance ``r_max``, default
        ``delta / 2``) is shared by every seed; each seed then closes the
        residual gap with its own stitched forward walk, drawn on the
        standard per-query stream ``default_rng([rng_seed, seed, length])``
        so answers keep the batch-composition-independence contract.
        ``walk_length=0`` requests the reverse-only mode: no walks run and
        the estimate is ``push.estimates[seed]``, exact up to ``r_max``
        (the mode the differential tests use for deterministic threshold
        decisions).  The forward half is also skipped automatically when
        the push drains every residual.
        """
        if delta <= 0.0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        seeds = [int(seed) for seed in seeds]
        resolved_r_max = default_r_max(delta) if r_max is None else float(r_max)
        if walk_length is None:
            walk_length = default_walk_length(
                delta, resolved_r_max, self.reset_probability
            )
        walk_length = int(walk_length)
        if walk_length < 0:
            raise ConfigurationError(
                f"walk_length must be >= 0, got {walk_length}"
            )
        if not seeds:
            return []
        tracer = self.tracer
        span = (
            tracer.span(
                "kernel.reverse_push",
                target=int(target),
                seeds=len(seeds),
                delta=delta,
            )
            if tracer is not None and tracer.enabled
            else nullcontext()
        )
        with span:
            if self._reverse_push_counter is not None:
                self._reverse_push_counter.inc()
            bidirectional = BidirectionalKernel(
                self.store.social_store.graph,
                reset_probability=self.reset_probability,
            )
            push = bidirectional.prepare_target(target, r_max=resolved_r_max)
            if walk_length > 0 and push.residual_mass != 0.0:
                walks = self.batch_stitched_walks(
                    seeds,
                    walk_length,
                    rngs=rngs,
                    rng_seed=rng_seed,
                    fetch_cache=fetch_cache,
                )
                return [
                    bidirectional.estimate(
                        push,
                        seed,
                        delta=delta,
                        visit_counts=walk.visit_counts,
                        resets=walk.resets,
                        walk_length=walk_length,
                    )
                    for seed, walk in zip(seeds, walks)
                ]
            return [
                bidirectional.estimate(push, seed, delta=delta, walk_length=0)
                for seed in seeds
            ]


class SalsaQueryKernel:
    """Batch personalized-SALSA walk stitching (the PPR kernel's sibling).

    Same architecture — per-walk uniform streams, once-per-batch node
    payloads, chunked visit assembly — specialized to the alternating
    hub/authority walk of
    :class:`~repro.core.salsa.PersonalizedSALSA`: ε-coins are flipped at
    hub visits only, stored segments splice from the side-matching pool
    (consumed from the end, like the reference), and every recorded visit
    carries its side parity so hub/authority counts reduce in one
    vectorized pass.
    """

    def __init__(
        self,
        pagerank_store: PageRankStore,
        *,
        reset_probability: float = 0.2,
        rng_block: int = _DEFAULT_RNG_BLOCK,
    ) -> None:
        if not pagerank_store.walks.track_sides:
            raise ConfigurationError(
                "SalsaQueryKernel needs a side-tracking walk store "
                "(build it via IncrementalSALSA)"
            )
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        self.store = pagerank_store
        self.reset_probability = reset_probability
        self.rng_block = rng_block

    def _load_node(self, node: int) -> _SalsaNodeInfo:
        store = self.store
        store.stats.record("fetch")
        walks = store.walks
        segment_ids = walks.segments_starting_at(node)
        views = walks.segment_views_starting_at(node)
        forward = []
        backward = []
        for segment_id, view in zip(segment_ids, views):
            if walks.parity_of(segment_id) == SIDE_HUB:
                forward.append(view)
            else:
                backward.append(view)
        return _SalsaNodeInfo(
            forward,
            backward,
            list(store.social_store.out_neighbors(node)),
            list(store.social_store.in_neighbors(node)),
        )

    def batch_stitched_walks(
        self,
        seeds: Sequence[int],
        lengths,
        *,
        rngs: Optional[Sequence[RngLike]] = None,
        rng_seed: int = 0,
    ) -> list[SalsaWalkResult]:
        """Run one personalized-SALSA walk per seed, batched."""
        seeds = [int(seed) for seed in seeds]
        num_walks = len(seeds)
        if isinstance(lengths, (int, np.integer)):
            targets = [int(lengths)] * num_walks
        else:
            targets = [int(length) for length in lengths]
            if len(targets) != num_walks:
                raise ConfigurationError(
                    f"{num_walks} seeds but {len(targets)} lengths"
                )
        for target in targets:
            if target <= 0:
                raise ConfigurationError(
                    f"length must be positive, got {target}"
                )
        if rngs is None:
            generators = _derived_rngs(seeds, targets, rng_seed)
        else:
            if len(rngs) != num_walks:
                raise ConfigurationError(
                    f"{num_walks} seeds but {len(rngs)} rngs"
                )
            generators = [ensure_rng(rng) for rng in rngs]
        if num_walks == 0:
            return []

        eps = self.reset_probability
        block = self.rng_block

        visited = [0] * num_walks
        resets = [0] * num_walks
        splices = [0] * num_walks
        plain = [0] * num_walks
        fetches = [0] * num_walks
        # Flat event streams grouped by walk (see the PPR kernel): spliced
        # segment views with the splice side, and plain-step (node, side)
        # visits.
        chunk_counts = [0] * num_walks
        chunk_views: list[np.ndarray] = []
        chunk_parity: list[int] = []  # side of the tail's first visit
        step_counts = [0] * num_walks
        step_nodes: list[int] = []
        step_sides: list[int] = []

        node_info: dict[int, _SalsaNodeInfo] = {}
        node_info_get = node_info.get
        load_node = self._load_node
        views_append = chunk_views.append
        parity_append = chunk_parity.append
        nodes_append = step_nodes.append
        sides_append = step_sides.append

        for walk in range(num_walks):
            seed = seeds[walk]
            target = targets[walk]
            random_block = generators[walk].random
            buffer: list[float] = []
            buffer_len = 0
            position = 0
            count = 1  # the initial hub visit of the seed
            node = seed
            side = SIDE_HUB
            resets_w = 0
            splices_w = 0
            plain_w = 0
            fetches_w = 0
            chunks_w = 0
            steps_w = 0
            # per-node [forward remaining, backward remaining] cursors
            cursors: dict[int, list[int]] = {}
            cursors_get = cursors.get

            while count < target:
                if side == SIDE_HUB:
                    if position >= buffer_len:
                        buffer = random_block(block).tolist()
                        buffer_len = block
                        position = 0
                    coin = buffer[position]
                    position += 1
                    if coin < eps:
                        resets_w += 1
                        count += 1
                        node = seed
                        continue  # side stays HUB
                remaining = cursors_get(node)
                if remaining is None:
                    info = node_info_get(node)
                    if info is None:
                        info = load_node(node)
                        node_info[node] = info
                    cursors[node] = list(info.sizes)
                    fetches_w += 1
                    continue
                info = node_info[node]
                index = remaining[side] - 1
                if index >= 0:
                    remaining[side] = index
                    view = info.pools[side][index]
                    if view.shape[0] > 1:
                        views_append(view[1:])
                        parity_append((side + 1) & 1)
                        chunks_w += 1
                    splices_w += 1
                    resets_w += 1  # the segment's own reset
                    count += int(view.shape[0])
                    node = seed
                    side = SIDE_HUB
                    continue
                degree = info.degrees[side]
                if degree == 0:
                    resets_w += 1
                    count += 1
                    node = seed
                    side = SIDE_HUB
                    continue
                if position >= buffer_len:
                    buffer = random_block(block).tolist()
                    buffer_len = block
                    position = 0
                adjacency = (
                    info.out_neighbors if side == SIDE_HUB else info.in_neighbors
                )
                node = adjacency[int(buffer[position] * degree)]
                position += 1
                side = 1 - side
                nodes_append(node)
                sides_append(side)
                steps_w += 1
                plain_w += 1
                count += 1

            visited[walk] = count
            resets[walk] = resets_w
            splices[walk] = splices_w
            plain[walk] = plain_w
            fetches[walk] = fetches_w
            chunk_counts[walk] = chunks_w
            step_counts[walk] = steps_w

        return self._assemble(
            seeds,
            visited,
            resets,
            splices,
            plain,
            fetches,
            chunk_counts,
            chunk_views,
            chunk_parity,
            step_counts,
            step_nodes,
            step_sides,
        )

    def _assemble(
        self,
        seeds,
        visited,
        resets,
        splices,
        plain,
        fetches,
        chunk_counts,
        chunk_views,
        chunk_parity,
        step_counts,
        step_nodes,
        step_sides,
    ) -> list[SalsaWalkResult]:
        """Reduce recorded events to per-walk hub/authority counters.

        Spliced tails carry the splice side; each visit's side is its
        alternating parity within the tail, computed in one vectorized
        pass before the same lexsort reduction the PPR kernel uses (run
        separately per side).
        """
        num_walks = len(seeds)
        walk_ids = np.arange(num_walks, dtype=np.int64)

        side_parts: dict[int, tuple[list, list]] = {0: ([], []), 1: ([], [])}
        if chunk_views:
            lens = np.fromiter(
                (tail.shape[0] for tail in chunk_views),
                dtype=np.int64,
                count=len(chunk_views),
            )
            per_chunk_owner = np.repeat(
                walk_ids, np.asarray(chunk_counts, dtype=np.int64)
            )
            owners = np.repeat(per_chunk_owner, lens)
            nodes = np.concatenate(chunk_views)
            starts = np.cumsum(lens) - lens
            offsets = np.arange(nodes.size, dtype=np.int64) - np.repeat(
                starts, lens
            )
            parities = np.repeat(np.asarray(chunk_parity, dtype=np.int64), lens)
            visit_sides = (offsets + parities) & 1
            for side in (0, 1):
                mask = visit_sides == side
                if mask.any():
                    side_parts[side][0].append(owners[mask])
                    side_parts[side][1].append(nodes[mask])
        if step_nodes:
            owners = np.repeat(
                walk_ids, np.asarray(step_counts, dtype=np.int64)
            )
            nodes = np.asarray(step_nodes, dtype=np.int64)
            sides = np.asarray(step_sides, dtype=np.int64)
            for side in (0, 1):
                mask = sides == side
                if mask.any():
                    side_parts[side][0].append(owners[mask])
                    side_parts[side][1].append(nodes[mask])

        per_walk_hub = _counts_per_walk(*side_parts[SIDE_HUB], num_walks)
        per_walk_auth = _counts_per_walk(*side_parts[1 - SIDE_HUB], num_walks)

        results = []
        for walk, seed in enumerate(seeds):
            hub_nodes, hub_counts = per_walk_hub[walk]
            auth_nodes, auth_counts = per_walk_auth[walk]
            hub: Counter = Counter()
            dict.update(hub, zip(hub_nodes.tolist(), hub_counts.tolist()))
            # every reset revisited (seed, HUB), plus the initial visit
            hub[seed] += resets[walk] + 1
            authority: Counter = Counter()
            dict.update(
                authority, zip(auth_nodes.tolist(), auth_counts.tolist())
            )
            results.append(
                SalsaWalkResult(
                    seed=seed,
                    length=visited[walk],
                    hub_counts=hub,
                    authority_counts=authority,
                    fetches=fetches[walk],
                    segments_used=splices[walk],
                    plain_steps=plain[walk],
                    resets=resets[walk],
                )
            )
        return results

    def stitched_walk(
        self,
        seed: int,
        length: int,
        *,
        rng: RngLike = None,
        rng_seed: int = 0,
    ) -> SalsaWalkResult:
        """The B=1 batch (identical to the walk inside any larger batch)."""
        rngs = None if rng is None else [rng]
        return self.batch_stitched_walks(
            [seed], length, rngs=rngs, rng_seed=rng_seed
        )[0]
