"""E-SERVE-MP: multi-process serve tier — correctness gate + worker scaling.

Two tests over :func:`repro.experiments.exp_serve_mp.run_serve_mp`:

* the ungated **differential** test proves multi-process answers are
  bit-identical to single-process serving over an interleaved
  query/update/epoch-bump schedule (this must hold on any machine);
* the **scaling** test asserts ≥2.5× sustained qps at 4 workers vs 1 —
  gated on ``os.cpu_count() >= 4``, since worker processes can only beat
  one process when they have cores to land on.

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI).  When
``REPRO_BENCH_JSON`` names a path, the machine-readable qps/latency
extras are written there for ``benchmarks/run_bench.py`` to fold into
its ``BENCH_serve_mp.json`` artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.exp_serve_mp import run_serve_mp

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 300,
        "num_edges": 3_600,
        "num_queries": 80,
        "sustained_queries": 200,
        "seed_pool_size": 40,
        "walk_length": 200,
        "wave_size": 50,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 1200,
        "num_edges": 14_400,
        "num_queries": 300,
        "sustained_queries": 600,
        "seed_pool_size": 60,
        "walk_length": 400,
        "wave_size": 100,
        "rng": 42,
    }
)


def _emit_json(result) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "experiment": result.experiment_id,
                "rows": result.rows,
                "notes": result.notes,
                **result.extras,
            },
            fh,
            indent=2,
        )


def test_mp_differential(benchmark, once):
    """mp answers == single-process answers, across epoch bumps."""
    result = once(benchmark, run_serve_mp, worker_counts=(1, 2), **PARAMS)
    tally = result.extras["differential"]
    assert tally["total"] > 0
    assert tally["matched"] == tally["total"], result.notes
    _emit_json(result)
    print()
    print(result.render())


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="worker scaling needs >= 4 cores to be meaningful",
)
def test_mp_scaling(benchmark, once):
    """>= 2.5x sustained qps at 4 workers vs 1 (the ISSUE acceptance)."""
    result = once(benchmark, run_serve_mp, worker_counts=(1, 4), **PARAMS)
    tally = result.extras["differential"]
    assert tally["matched"] == tally["total"], result.notes
    qps = result.extras["qps_by_workers"]
    assert qps["4"] >= 2.5 * qps["1"], (
        f"4-worker qps {qps['4']:.1f} < 2.5x 1-worker qps {qps['1']:.1f}"
    )
    _emit_json(result)
    print()
    print(result.render())
