"""E-F5: a few random steps go a long way (§4.4, Figure 5).

Protocol, scaled from the paper: for each seed user, a long stitched walk
(paper: 50 000 steps) defines the "true" top-100 personalized results; a
short walk (paper: 5 000 steps) retrieves its top-1000.  Direct friends and
the seed are excluded on both sides.  The 11-point interpolated average
precision curve over users is the figure; the paper reads precision ≈ 0.8
at recall 0.8 off it.
"""

from __future__ import annotations


from repro.analysis.asciiplot import ascii_plot
from repro.analysis.precision import RECALL_LEVELS, average_precision_11pt
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.experiments.common import ExperimentResult, register
from repro.rng import ensure_rng, spawn
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_graph

__all__ = ["run_fig5"]


@register("E-F5")
def run_fig5(
    num_nodes: int = 10_000,
    num_edges: int = 120_000,
    num_users: int = 30,
    true_length: int = 50_000,
    query_length: int = 5_000,
    true_top: int = 100,
    retrieved_top: int = 1000,
    walks_per_node: int = 10,
    rng=42,
) -> ExperimentResult:
    """Figure 5: 11-pt interpolated average precision of short walks."""
    generator = ensure_rng(rng)
    graph_rng, engine_rng, walk_rng, seed_rng = spawn(generator, 4)
    graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    engine = IncrementalPageRank.from_graph(
        graph, reset_probability=0.2, walks_per_node=walks_per_node, rng=engine_rng
    )
    query = PersonalizedPageRank(engine.pagerank_store, rng=walk_rng)
    seeds = users_with_friend_count(
        graph, minimum=15, maximum=40, count=num_users, rng=seed_rng
    )

    runs = []
    for seed in seeds:
        exclude = {seed, *graph.out_view(seed)}
        true_walk = query.stitched_walk(seed, true_length)
        truth = [node for node, _ in true_walk.top(true_top, exclude=exclude)]
        short_walk = query.stitched_walk(seed, query_length)
        retrieved = [
            node for node, _ in short_walk.top(retrieved_top, exclude=exclude)
        ]
        if truth:
            runs.append((retrieved, truth))

    curve = average_precision_11pt(runs)
    rows = [
        {"recall": float(level), "interpolated avg precision": float(precision)}
        for level, precision in zip(RECALL_LEVELS, curve)
    ]
    figure = ascii_plot(
        {"precision": (RECALL_LEVELS.tolist(), curve.tolist())},
        title="Figure 5: 11-point interpolated average precision",
    )
    result = ExperimentResult(
        experiment_id="E-F5",
        title="Figure 5: short walks recover the true top-k",
        params={
            "n": num_nodes,
            "m": num_edges,
            "users": len(runs),
            "true_length": true_length,
            "query_length": query_length,
            "true_top": true_top,
            "retrieved_top": retrieved_top,
        },
        rows=rows,
        figures={"fig5": figure},
    )
    precision_at_08 = curve[8]
    result.notes.append(
        f"Paper reads precision ≈ 0.8 at recall 0.8; measured {precision_at_08:.2f}."
    )
    return result
