"""The query front-end: cached PPR / top-k answers over the two stores.

``QueryEngine`` is what a recommendation service calls.  It answers the
two §3 query shapes — full personalized-PageRank walks and top-``k``
rankings — against an :class:`~repro.core.incremental.IncrementalPageRank`
engine's stores, through two caches:

* a seed-keyed **result cache** (:class:`~repro.serve.cache.ResultCache`,
  LRU + TTL) holding finished answers, invalidated selectively by the
  engine's dirty-node feed;
* a shared **fetch cache** (:class:`~repro.core.personalized.FetchCache`)
  holding fetched node states, so even cache-miss walks skip most store
  round-trips (the hot core of the graph is read by nearly every walk).

Cache misses are computed by the **multi-seed query kernel**
(:class:`~repro.core.query_kernel.QueryKernel`): single queries run as
B=1 batches, and :meth:`QueryEngine.run_batch` answers a whole drain of
requests with one kernel invocation (the
:class:`~repro.serve.batcher.RequestBatcher` feeds it per worker pass).
``use_kernel=False`` falls back to the scalar reference walker.

**Determinism.**  Each query's walk RNG is derived from
``(rng_seed, query seed, walk length)`` — not from wall clock, arrival
order, or batch composition — so the same query against the same store
state always returns the same answer, no matter which worker thread runs
it, what was cached, or which other queries shared its kernel batch (the
kernel's per-stream contract; see :mod:`repro.core.query_kernel`).
Combined with footprint invalidation (see :mod:`repro.serve.cache`) this
gives the serving layer's differential guarantee: hit or miss, batched or
not, the answer equals a cache-free B=1 kernel run with the same derived
generator on the current store state (or a cache-free
:meth:`~repro.core.personalized.PersonalizedPageRank.stitched_walk` when
``use_kernel=False``).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.core import theory
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import (
    FetchCache,
    PersonalizedPageRank,
    StitchedWalkResult,
)
from repro.core.query_kernel import QueryKernel
from repro.core.reverse_push import (
    BidirectionalKernel,
    PprToTargetResult,
    default_r_max,
    default_walk_length,
)
from repro.core.scheduler import StalenessScheduler
from repro.core.topk import TopKResult, walk_length_for_top_k
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, Tracer
from repro.serve.cache import ResultCache
from repro.serve.stats import ServeStats
from repro.store.pagerank_store import FETCH_FULL

__all__ = ["QueryEngine", "FRESHNESS_EAGER", "FRESHNESS_BOUNDED"]

#: Every mutation repairs the index synchronously (today's behavior).
FRESHNESS_EAGER = "eager"
#: Mutations routed through a :class:`StalenessScheduler` defer repair
#: inside ``staleness_budget``; queries repair-on-read through it.
FRESHNESS_BOUNDED = "bounded"


class QueryEngine:
    """Cached, deterministic PPR / top-k service over an incremental engine."""

    def __init__(
        self,
        engine: IncrementalPageRank,
        *,
        rng_seed: int = 0,
        result_capacity: int = 4096,
        result_ttl: Optional[float] = None,
        flush_threshold: int = 2048,
        fetch_cache_capacity: Optional[int] = None,
        cache_results: bool = True,
        share_fetches: bool = True,
        alpha: float = 0.77,
        c: float = 5.0,
        use_kernel: bool = True,
        stats: Optional[ServeStats] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        freshness: str = FRESHNESS_EAGER,
        staleness_budget: float = 0.05,
        scheduler: Optional[StalenessScheduler] = None,
        clock=time.monotonic,
    ) -> None:
        """Attach to ``engine`` and subscribe to its update feed.

        ``cache_results=False`` / ``share_fetches=False`` disable the
        respective cache (every query recomputes) — the ablation the
        E-SERVE benchmark measures against.  ``alpha``/``c`` are the
        Equation-4 walk-sizing defaults for top-``k`` queries.
        ``use_kernel=False`` computes misses with the scalar reference
        walker instead of the batch kernel (a different—equally valid—
        draw of each answer; pick one per deployment, as cached kernel
        results never equal fresh reference recomputes and vice versa).
        A ``sampled_edge``-mode store also falls back to the scalar
        walker (the kernel requires ``fetch_mode='full'``); check
        ``engine.kernel is None`` to see which path serves misses.

        ``freshness`` is the staleness SLO: ``"eager"`` (default) keeps
        synchronous per-mutation repair; ``"bounded"`` fronts the engine
        with a :class:`StalenessScheduler` capped at ``staleness_budget``
        (the estimated PPR perturbation any single node may accumulate
        before repair is forced — see
        :func:`repro.core.theory.staleness_error_increment`).  Route
        mutations through :attr:`scheduler` (not the raw engine) in
        bounded mode; queries repair-on-read, so a seed with pending
        mutations is flushed before its walk.  Pass ``scheduler=`` to
        share an externally-owned scheduler (e.g. one with a background
        worker); otherwise bounded mode creates and owns one, closed by
        :meth:`detach`.

        ``registry`` is the observability plane's metric sink: serve
        counters, kernel stage timings, and scheduler gauges all bill
        into it (pass the *engine's* registry for a unified exposition;
        default is a private one, so two QueryEngines over one
        IncrementalPageRank keep independent serve counters).  Ignored
        when an explicit ``stats`` object is supplied — the registry
        behind ``stats`` wins.  ``tracer`` collects structured spans
        (``serve.request`` → ``kernel.batch`` → ``store.fetch``); the
        default :class:`~repro.obs.Tracer` is inert unless ``REPRO_OBS=2``.
        """
        if rng_seed < 0:
            raise ConfigurationError(f"rng_seed must be >= 0, got {rng_seed}")
        if freshness not in (FRESHNESS_EAGER, FRESHNESS_BOUNDED):
            raise ConfigurationError(f"unknown freshness mode {freshness!r}")
        if scheduler is not None and scheduler.engine is not engine:
            raise ConfigurationError(
                "scheduler fronts a different engine than this QueryEngine"
            )
        self.engine = engine
        self.store = engine.pagerank_store
        self.rng_seed = rng_seed
        self.alpha = alpha
        self.c = c
        self.cache_results = cache_results
        self.clock = clock
        self.results = ResultCache(
            capacity=result_capacity,
            ttl=result_ttl,
            flush_threshold=flush_threshold,
            clock=clock,
        )
        self.fetch_cache = (
            FetchCache(capacity=fetch_cache_capacity) if share_fetches else None
        )
        self.stats = stats if stats is not None else ServeStats(registry=registry)
        #: The metrics registry serve counters bill into (the one behind
        #: :attr:`stats`); scrape with ``registry.render_prometheus()``.
        self.registry = self.stats.registry
        #: Span collector threaded through the kernel and scheduler.
        self.tracer = tracer if tracer is not None else Tracer()
        if scheduler is not None:
            self.freshness = FRESHNESS_BOUNDED
            self.scheduler: Optional[StalenessScheduler] = scheduler
            self._owns_scheduler = False
        elif freshness == FRESHNESS_BOUNDED:
            self.freshness = FRESHNESS_BOUNDED
            self.scheduler = StalenessScheduler(
                engine,
                staleness_budget=staleness_budget,
                stats=self.stats,
                clock=clock,
                tracer=self.tracer,
            )
            self._owns_scheduler = True
        else:
            self.freshness = FRESHNESS_EAGER
            self.scheduler = None
            self._owns_scheduler = False
        self._walker = PersonalizedPageRank(
            self.store, reset_probability=engine.reset_probability
        )
        #: The multi-seed batch kernel (None => scalar reference walker).
        self.kernel: Optional[QueryKernel] = (
            QueryKernel(
                self.store,
                reset_probability=engine.reset_probability,
                registry=self.registry,
                tracer=self.tracer,
            )
            if use_kernel and self.store.fetch_mode == FETCH_FULL
            else None
        )
        self._listener = self._on_update
        engine.add_update_listener(self._listener)

    # ------------------------------------------------------------------
    # Determinism
    # ------------------------------------------------------------------

    def query_rng(self, seed: int, length: int) -> np.random.Generator:
        """The generator a (seed, walk-length) query always walks with.

        Public so tests and benchmarks can run the cache-free reference
        computation with the *identical* randomness.
        """
        return np.random.default_rng([self.rng_seed, seed, length])

    # ------------------------------------------------------------------
    # Freshness (bounded mode)
    # ------------------------------------------------------------------

    def ensure_fresh_for(self, seeds) -> bool:
        """Repair-on-read hook: flush deferred repairs touching ``seeds``.

        No-op in eager mode.  Runs *before* the cache lookup so the flush's
        invalidation feed drops any result the repair made stale, and the
        recompute sees the repaired store.  Returns whether a flush ran.
        """
        if self.scheduler is None:
            return False
        return self.scheduler.ensure_fresh(seeds)

    def _store_read_lock(self):
        """Lock queries hold while reading walk state (bounded mode only).

        Keeps a background repair from rewriting arena memory under an
        in-flight kernel batch.  Taken strictly *after*
        :meth:`ensure_fresh_for` — never the other way — so a reader can
        never deadlock against the flush's write side.
        """
        if self.scheduler is None:
            return nullcontext()
        return self.scheduler.read_lock()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def ppr(self, seed: int, length: int) -> StitchedWalkResult:
        """Personalized PageRank for ``seed`` by a stitched walk of ``length``.

        Returns the full :class:`StitchedWalkResult` (visit counts are the
        personalized scores).  Cached results are shared objects — treat
        them as read-only.
        """
        self.ensure_fresh_for((seed,))
        key = ("ppr", seed, length)
        return self._served(key, lambda: self._run_walk(seed, length))[0]

    def top_k(
        self,
        seed: int,
        k: int,
        *,
        length: Optional[int] = None,
        exclude_friends: bool = True,
        alpha: Optional[float] = None,
        c: Optional[float] = None,
    ) -> TopKResult:
        """Top-``k`` personalized ranking for ``seed`` (Equation-4 sizing).

        Matches :func:`repro.core.topk.top_k_personalized` run with
        ``rng=self.query_rng(seed, walk_length)`` on the current store
        state — hit or miss.  The walk length derived from Equation 4 is
        part of the cache key, so node-count growth (which changes the
        derived length) can never serve a stale-sized answer.
        """
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.ensure_fresh_for((seed,))
        alpha = self.alpha if alpha is None else alpha
        c = self.c if c is None else c
        num_nodes = self.store.social_store.num_nodes
        walk_length = (
            length
            if length is not None
            else walk_length_for_top_k(k, num_nodes, alpha, c)
        )
        key = ("topk", seed, k, walk_length, exclude_friends, alpha, c)
        return self._served(
            key,
            lambda: self._run_top_k(
                seed, k, walk_length, exclude_friends, alpha, c
            ),
        )[0]

    def ppr_to_target(
        self,
        seed: int,
        target: int,
        delta: float,
        *,
        r_max: Optional[float] = None,
        walk_length: Optional[int] = None,
    ) -> PprToTargetResult:
        """Bidirectional ``pi_seed(target)`` estimate (FAST-PPR query shape).

        A reverse local push from ``target`` down to residual tolerance
        ``r_max`` (default ``delta / 2``), combined with a forward
        stitched walk from ``seed`` on the standard
        ``query_rng(seed, walk_length)`` stream — so the answer is
        deterministic and batch-composition independent, like every other
        query.  ``walk_length=0`` skips the forward walk (reverse-only,
        exact up to ``r_max``).  Defaults are resolved *before* the cache
        key is formed, so equivalent queries share one cache slot, and
        the cached footprint covers the push's touched set plus the
        walk's visit set — any edge update outside it cannot change the
        answer.
        """
        if delta <= 0.0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.ensure_fresh_for((seed, target))
        resolved_r_max = default_r_max(delta) if r_max is None else float(r_max)
        resolved_length = (
            default_walk_length(
                delta, resolved_r_max, self.engine.reset_probability
            )
            if walk_length is None
            else int(walk_length)
        )
        key = (
            "pprt",
            seed,
            target,
            float(delta),
            resolved_r_max,
            resolved_length,
        )
        return self._served(
            key,
            lambda: self._run_ppr_to_target(
                seed, target, float(delta), resolved_r_max, resolved_length
            ),
        )[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _served(self, key: Hashable, compute):
        """Answer ``key`` through the result cache; returns (value, hit)."""
        started = self.clock()
        if self.cache_results:
            hit, value = self.results.get(key)
            if hit:
                self.stats.record_query(hit=True, latency=self.clock() - started)
                return value, True
        # guard_version rejects the insert if an invalidation ran while we
        # computed — otherwise a result walked on the pre-update store
        # could land after the update's invalidation and never be dropped;
        # guard_generation does the same for arena swaps (swap_engine)
        guard_version = self.results.version
        guard_generation = self.results.generation
        value, footprint = compute()
        if self.cache_results:
            self.results.put(
                key,
                value,
                footprint,
                self.engine.epoch,
                guard_version=guard_version,
                generation=guard_generation,
            )
        self.stats.record_query(hit=False, latency=self.clock() - started)
        return value, False

    def _compute_walk(self, seed: int, length: int) -> StitchedWalkResult:
        """One cache-miss walk: a B=1 kernel batch (or the reference)."""
        rng = self.query_rng(seed, length)
        with self._store_read_lock():
            if self.kernel is not None:
                walk = self.kernel.stitched_walk(
                    seed, length, rng=rng, fetch_cache=self.fetch_cache
                )
                self.stats.record_kernel_batch(1, (walk.length,))
                return walk
            return self._walker.stitched_walk(
                seed, length, rng=rng, fetch_cache=self.fetch_cache
            )

    def _run_walk(self, seed: int, length: int):
        walk = self._compute_walk(seed, length)
        return walk, frozenset(walk.visit_counts)

    def _run_top_k(
        self,
        seed: int,
        k: int,
        walk_length: int,
        exclude_friends: bool,
        alpha: float,
        c: float,
    ):
        walk = self._compute_walk(seed, walk_length)
        return self._package_top_k(walk, k, walk_length, exclude_friends, alpha, c)

    def _package_top_k(
        self,
        walk: StitchedWalkResult,
        k: int,
        walk_length: int,
        exclude_friends: bool,
        alpha: float,
        c: float,
    ):
        """Rank a finished walk into a ``(TopKResult, footprint)`` pair."""
        seed = walk.seed
        # Footprint = the *raw* visit set: excluded nodes (seed, friends)
        # were still read by the walk, so they must keep invalidating.
        footprint = frozenset(walk.visit_counts)
        excluded = {seed}
        if exclude_friends:
            excluded.update(self.store.social_store.out_neighbors(seed))
        result = TopKResult(
            seed=seed,
            k=k,
            ranking=walk.top(k, exclude=excluded),
            walk_length=walk_length,
            fetches=walk.fetches,
            fetch_bound=theory.cor9_topk_fetch_bound(
                k, alpha, c, self._seed_walk_count(seed)
            ),
            alpha=alpha,
            c=c,
        )
        return result, footprint

    def _seed_walk_count(self, seed: int) -> int:
        return max(len(self.store.walks.segments_starting_at(seed)), 1)

    def _run_ppr_to_target(
        self, seed: int, target: int, delta: float, r_max: float, length: int
    ):
        with self._store_read_lock():
            if self.kernel is not None:
                result = self.kernel.batch_ppr_to_target(
                    [seed],
                    target,
                    delta,
                    r_max=r_max,
                    walk_length=length,
                    rng_seed=self.rng_seed,
                    fetch_cache=self.fetch_cache,
                )[0]
            else:
                result = self._scalar_ppr_to_target(
                    seed, target, delta, r_max, length
                )
        return result, result.footprint

    def _scalar_ppr_to_target(
        self, seed: int, target: int, delta: float, r_max: float, length: int
    ) -> PprToTargetResult:
        """Reference-walker fallback; caller holds the store read lock."""
        bidirectional = BidirectionalKernel(
            self.store.social_store.graph,
            reset_probability=self.engine.reset_probability,
        )
        push = bidirectional.prepare_target(target, r_max=r_max)
        if length > 0 and push.residual_mass != 0.0:
            walk = self._walker.stitched_walk(
                seed,
                length,
                rng=self.query_rng(seed, length),
                fetch_cache=self.fetch_cache,
            )
            return bidirectional.estimate(
                push,
                seed,
                delta=delta,
                visit_counts=walk.visit_counts,
                resets=walk.resets,
                walk_length=length,
            )
        return bidirectional.estimate(push, seed, delta=delta, walk_length=0)

    # ------------------------------------------------------------------
    # Batched execution (one kernel invocation per drain)
    # ------------------------------------------------------------------

    def run_batch(self, requests: Sequence) -> list:
        """Answer many requests with one kernel invocation for the misses.

        ``requests`` are :class:`~repro.serve.batcher.QueryRequest`-shaped
        objects (``kind``/``seed``/``k``/``length``/``exclude_friends``,
        plus ``target``/``delta``/``r_max`` for ``"pprt"`` requests).
        Duplicate query keys are computed once; cache hits are served from
        the result cache; every remaining walk miss joins one
        :meth:`QueryKernel.batch_stitched_walks` call sharing the fetch
        cache, and ``pprt`` misses share one reverse push per distinct
        target through :meth:`QueryKernel.batch_ppr_to_target`.  Each answer is identical to what the corresponding
        single-query :meth:`ppr` / :meth:`top_k` call would return — the
        kernel's per-query RNG streams make results independent of batch
        composition — so batching is purely a throughput decision.
        Returns values in request order.
        """
        if not requests:
            return []
        freshen = {request.seed for request in requests}
        freshen.update(
            request.target
            for request in requests
            if getattr(request, "kind", None) == "pprt"
        )
        self.ensure_fresh_for(freshen)
        started = self.clock()
        num_nodes = self.store.social_store.num_nodes
        specs = []  # (key, kind, seed, walk_length, k, exclude_friends)
        # pprt specs are wider: (key, "pprt", seed, target, delta, r_max, len)
        for request in requests:
            if request.kind == "pprt":
                if request.target is None or request.delta is None:
                    raise ConfigurationError(
                        "pprt requests need a target and a delta"
                    )
                delta = float(request.delta)
                if delta <= 0.0:
                    raise ConfigurationError(
                        f"delta must be positive, got {delta}"
                    )
                r_max = (
                    default_r_max(delta)
                    if getattr(request, "r_max", None) is None
                    else float(request.r_max)
                )
                length = (
                    default_walk_length(
                        delta, r_max, self.engine.reset_probability
                    )
                    if request.length is None
                    else int(request.length)
                )
                key = (
                    "pprt",
                    request.seed,
                    request.target,
                    delta,
                    r_max,
                    length,
                )
                specs.append(
                    (
                        key,
                        "pprt",
                        request.seed,
                        request.target,
                        delta,
                        r_max,
                        length,
                    )
                )
            elif request.kind == "ppr":
                if request.length is None:
                    raise ConfigurationError(
                        "ppr requests need an explicit length"
                    )
                key = ("ppr", request.seed, request.length)
                specs.append(
                    (key, "ppr", request.seed, request.length, 0, False)
                )
            else:
                if request.k <= 0:
                    raise ConfigurationError(
                        f"k must be positive, got {request.k}"
                    )
                walk_length = (
                    request.length
                    if request.length is not None
                    else walk_length_for_top_k(
                        request.k, num_nodes, self.alpha, self.c
                    )
                )
                key = (
                    "topk",
                    request.seed,
                    request.k,
                    walk_length,
                    request.exclude_friends,
                    self.alpha,
                    self.c,
                )
                specs.append(
                    (
                        key,
                        "topk",
                        request.seed,
                        walk_length,
                        request.k,
                        request.exclude_friends,
                    )
                )

        resolved: dict[Hashable, object] = {}
        misses = []
        pprt_misses = []
        seen = set()
        for spec in specs:
            key = spec[0]
            if key in seen:
                continue
            seen.add(key)
            if self.cache_results:
                hit, value = self.results.get(key)
                if hit:
                    resolved[key] = value
                    self.stats.record_query(
                        hit=True, latency=self.clock() - started
                    )
                    continue
            if spec[1] == "pprt":
                pprt_misses.append(spec)
            else:
                misses.append(spec)

        if pprt_misses:
            guard_version = self.results.version
            guard_generation = self.results.generation
            # One reverse push per distinct (target, delta, r_max, length):
            # the push is seed-independent, so all that group's seeds share
            # it through a single kernel call.
            groups: dict[tuple, list] = {}
            for spec in pprt_misses:
                groups.setdefault(spec[3:], []).append(spec)
            with self._store_read_lock():
                for (target, delta, r_max, length), group in groups.items():
                    group_seeds = [spec[2] for spec in group]
                    if self.kernel is not None:
                        answers = self.kernel.batch_ppr_to_target(
                            group_seeds,
                            target,
                            delta,
                            r_max=r_max,
                            walk_length=length,
                            rng_seed=self.rng_seed,
                            fetch_cache=self.fetch_cache,
                        )
                    else:
                        answers = [
                            self._scalar_ppr_to_target(
                                seed, target, delta, r_max, length
                            )
                            for seed in group_seeds
                        ]
                    for spec, answer in zip(group, answers):
                        if self.cache_results:
                            self.results.put(
                                spec[0],
                                answer,
                                answer.footprint,
                                self.engine.epoch,
                                guard_version=guard_version,
                                generation=guard_generation,
                            )
                        resolved[spec[0]] = answer
            latency = self.clock() - started
            for _ in pprt_misses:
                self.stats.record_query(hit=False, latency=latency)

        if misses:
            guard_version = self.results.version
            guard_generation = self.results.generation
            rngs = [
                self.query_rng(seed, walk_length)
                for _, _, seed, walk_length, _, _ in misses
            ]
            with self._store_read_lock():
                if self.kernel is not None:
                    walks = self.kernel.batch_stitched_walks(
                        [spec[2] for spec in misses],
                        [spec[3] for spec in misses],
                        rngs=rngs,
                        fetch_cache=self.fetch_cache,
                    )
                    self.stats.record_kernel_batch(
                        len(misses), [walk.length for walk in walks]
                    )
                else:
                    walks = [
                        self._walker.stitched_walk(
                            seed,
                            walk_length,
                            rng=rng,
                            fetch_cache=self.fetch_cache,
                        )
                        for (_, _, seed, walk_length, _, _), rng in zip(
                            misses, rngs
                        )
                    ]
            for spec, walk in zip(misses, walks):
                key, kind, _, walk_length, k, exclude_friends = spec
                if kind == "ppr":
                    value, footprint = walk, frozenset(walk.visit_counts)
                else:
                    value, footprint = self._package_top_k(
                        walk, k, walk_length, exclude_friends, self.alpha, self.c
                    )
                if self.cache_results:
                    self.results.put(
                        key,
                        value,
                        footprint,
                        self.engine.epoch,
                        guard_version=guard_version,
                        generation=guard_generation,
                    )
                resolved[key] = value
            latency = self.clock() - started
            for _ in misses:
                self.stats.record_query(hit=False, latency=latency)

        return [resolved[spec[0]] for spec in specs]

    # ------------------------------------------------------------------
    # Invalidation + lifecycle
    # ------------------------------------------------------------------

    def _on_update(self, epoch: int, dirty_nodes: Optional[frozenset]) -> None:
        flushes_before = self.results.flushes
        dropped = self.results.invalidate(dirty_nodes)
        self.stats.record_invalidation(
            dropped, flush=self.results.flushes > flushes_before
        )
        if self.fetch_cache is not None:
            if dirty_nodes is None:
                self.fetch_cache.clear()
            else:
                self.fetch_cache.invalidate(dirty_nodes)

    def prewarm(self, nodes, rng=None) -> int:
        """Pre-fetch ``nodes`` into the shared fetch cache (0 if disabled)."""
        if self.fetch_cache is None:
            return 0
        return self.fetch_cache.prewarm(self.store, nodes, rng)

    def swap_engine(self, engine: IncrementalPageRank) -> int:
        """Rebind this front-end to a new engine (epoch/arena swap).

        The multi-process serve tier's worker-side half of the epoch-bump
        protocol (:mod:`repro.serve.epochs`): a worker that just attached
        a freshly published snapshot generation swaps its query engine
        onto it *between* request drains.  The swap

        * unsubscribes from the old engine's update feed and subscribes to
          the new one;
        * rebinds the store, reference walker, and query kernel;
        * advances the result cache's arena generation
          (:meth:`ResultCache.bump_generation`) so every cached answer —
          and any in-flight put computed against the old arena — is dead;
        * clears the fetch cache (its node states alias the old arena).

        ``rng_seed`` and walk-sizing parameters are preserved, so answers
        after the swap are bit-identical to a fresh single-process engine
        over the same store state.  Returns the new cache generation.

        Bounded-freshness engines cannot swap: their scheduler fronts the
        old engine's mutation path (workers attach read-only snapshots and
        serve in eager mode).
        """
        if self.scheduler is not None:
            raise ConfigurationError(
                "cannot swap a bounded-freshness QueryEngine: its scheduler "
                "fronts the old engine; swap is for read-only serve workers"
            )
        self.engine.remove_update_listener(self._listener)
        self.engine = engine
        self.store = engine.pagerank_store
        self._walker = PersonalizedPageRank(
            self.store, reset_probability=engine.reset_probability
        )
        if self.kernel is not None and self.store.fetch_mode == FETCH_FULL:
            self.kernel = QueryKernel(
                self.store,
                reset_probability=engine.reset_probability,
                registry=self.registry,
                tracer=self.tracer,
            )
        else:
            self.kernel = None
        generation = self.results.bump_generation()
        if self.fetch_cache is not None:
            self.fetch_cache.clear()
        engine.add_update_listener(self._listener)
        return generation

    def detach(self) -> None:
        """Unsubscribe from the engine's update feed (lifecycle hygiene).

        Also closes the staleness scheduler if this engine created it
        (joining its worker and flushing what remains); an externally
        supplied scheduler is left to its owner.
        """
        self.engine.remove_update_listener(self._listener)
        if self._owns_scheduler and self.scheduler is not None:
            self.scheduler.close()

    def __repr__(self) -> str:
        return (
            f"QueryEngine(epoch={self.engine.epoch}, "
            f"cached_results={len(self.results)}, "
            f"fetch_cache={len(self.fetch_cache) if self.fetch_cache else 0}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
