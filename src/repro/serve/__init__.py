"""repro.serve — the query-serving layer over the incremental walk store.

The paper maintains an always-fresh walk index so personalized queries are
cheap *at read time*; this package is the read path.  It turns the §3
query primitives into a service: cached, batched, deduplicated,
admission-controlled, and invalidated exactly when the incremental engine
touches state a cached answer depended on.

Module map (the query path, top to bottom)::

    client request
        │
        ▼
    batcher.py   RequestBatcher — coalesces duplicate seeds, sheds load
        │        past a queue-depth limit (LoadShedError), and answers
        │        each drain with one multi-seed kernel invocation per
        │        worker pass (kernel_batching=True, the default)
        ▼
    engine.py    QueryEngine — answers ppr()/top_k()/run_batch() with
        │        per-query deterministic RNG; consults the seed-keyed
        │        result cache, else computes through the batch kernel
        │        and the shared fetch cache
        ▼
    cache.py     ResultCache — LRU + TTL result store with footprint
        │        (dirty-set) invalidation fed by IncrementalPageRank's
        │        epoch/update listeners; full flush as fallback
        ▼
    (core)       QueryKernel (repro.core.query_kernel) — batch Algorithm
        │        1 walk stitching with per-query RNG streams + FetchCache
        │        shared cross-query fetched node states (DESIGN.md §10)
        ▼
    (store)      PageRankStore.fetch / SocialStore — the two §2 databases

    stats.py     ServeStats — hit/shed/coalesce counters + latency
                 histogram, shared by every component above
    traffic.py   Zipf seed generator + interleaved query/update phases
                 (the E-SERVE workload)

Multi-process tier (scales the read path across cores)::

    frontend.py  MultiProcessFrontend — seed-affine fan-out of requests
        │        over N worker processes with a shared in-flight window
        │        (admission control + LoadShedError shedding) and an
        │        asyncio façade (asubmit/arun)
        ▼
    epochs.py    ArenaPublisher — mmap-able snapshot generations + the
        │        CURRENT pointer; the epoch-bump protocol that makes
        │        coordinator updates visible as a consistent barrier
        ▼
    worker.py    worker_main — spawned read-only worker: attaches the
        │        published arena (repro.store.persistence.attach_engine)
        │        and answers batches through its own RequestBatcher;
        │        answers are bit-identical to single-process serving
        ▼
    wal.py       WriteAheadLog + recover_engine — checksummed edge-event
                 log fsync'd before each mutation and truncated at each
                 publish; replays the tail after a coordinator crash to
                 the exact (bit-identical) pre-crash engine state

The frontend supervises its workers (DESIGN.md §15): process sentinels
detect crashes, orphaned batches are re-routed and re-executed
bit-identically, dead workers respawn against the latest published
generation (bounded by a per-worker circuit breaker), and at zero live
workers the coordinator serves inline from the same published snapshot.
Deterministic fault injection for all of this lives in ``repro.faults``.

Correctness is differential, not best-effort: for any interleaving of
queries and updates, a served answer — cache hit or miss — equals a
cache-free run of the same query with the same derived RNG on the current
store state (``tests/test_serve.py``).  The enabling invariants:

* walks consume RNG identically with and without the fetch cache;
* every cached result records its walk's visit **footprint**;
* every mutation publishes its **dirty node set**, and any overlap drops
  the entry;
* both caches version-guard inserts, so a result computed before an
  invalidation can never be cached after it.

**Concurrency contract.**  Queries are safe to run concurrently with each
other (that is the batcher's job).  Graph/walk-store *mutations* are not
synchronized against in-flight walks — apply updates between query waves
(e.g. after ``RequestBatcher.run`` returns, as every driver in this
repository does), not concurrently with unresolved futures.  The version
guards keep a violation transient (a stale answer may be returned once
but is never cached); they do not make torn reads safe.
"""

from repro.serve.batcher import QueryRequest, RequestBatcher
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.engine import QueryEngine
from repro.serve.epochs import ArenaPublisher, read_current
from repro.serve.frontend import MultiProcessFrontend
from repro.serve.stats import ServeStats
from repro.serve.traffic import (
    TrafficPhase,
    interleaved_traffic,
    zipf_seed_sequence,
)
from repro.serve.wal import (
    RecoveryReport,
    WalReadResult,
    WalRecord,
    WriteAheadLog,
    read_wal,
    recover_engine,
)
from repro.serve.worker import WorkerConfig

__all__ = [
    "QueryEngine",
    "RequestBatcher",
    "QueryRequest",
    "ResultCache",
    "CacheEntry",
    "ServeStats",
    "TrafficPhase",
    "interleaved_traffic",
    "zipf_seed_sequence",
    "MultiProcessFrontend",
    "ArenaPublisher",
    "WorkerConfig",
    "read_current",
    "WriteAheadLog",
    "WalRecord",
    "WalReadResult",
    "RecoveryReport",
    "read_wal",
    "recover_engine",
]
