"""Experiment result containers and the driver registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
]


@dataclass
class ExperimentResult:
    """One experiment's outcome, ready for printing or EXPERIMENTS.md."""

    experiment_id: str
    title: str
    params: Dict[str, Any] = field(default_factory=dict)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    figures: Dict[str, str] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Machine-readable extras (qps maps, tallies) for artifact writers
    #: like ``benchmarks/run_bench.py``; never rendered in the report.
    extras: Dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        """Render ``rows`` as a GitHub-style markdown table."""
        if not self.rows:
            return "(no rows)"
        columns = list(self.rows[0].keys())
        header = "| " + " | ".join(columns) + " |"
        divider = "|" + "|".join("---" for _ in columns) + "|"
        body = []
        for row in self.rows:
            cells = [_format_cell(row.get(column)) for column in columns]
            body.append("| " + " | ".join(cells) + " |")
        return "\n".join([header, divider, *body])

    def render(self) -> str:
        """Full human-readable report: params, table, figures, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.params:
            settings = ", ".join(f"{k}={v}" for k, v in self.params.items())
            parts.append(f"params: {settings}")
        parts.append(self.table())
        for label, figure in self.figures.items():
            parts.append(f"\n-- {label} --\n{figure}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator: add a driver to the registry under ``experiment_id``."""

    def decorator(func: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id
        return func

    return decorator


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments() -> Mapping[str, Callable[..., ExperimentResult]]:
    return dict(sorted(_REGISTRY.items()))
