"""Monte Carlo estimator vs the exact Equation-1 fixed point (Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_iteration import exact_pagerank
from repro.core.monte_carlo import (
    EMPIRICAL,
    PAPER,
    MonteCarloPageRank,
    build_walk_store,
    scores_from_store,
)
from repro.errors import ConfigurationError
from repro.graph.generators import directed_cycle


class TestEstimates:
    def test_unbiased_against_exact(self, pa_graph):
        """Mean of many independent estimates converges to the exact fixed
        point of Equation (1) — the estimator's defining property."""
        exact = exact_pagerank(pa_graph, reset_probability=0.2)
        runs = [
            MonteCarloPageRank(
                pa_graph, reset_probability=0.2, walks_per_node=10, rng=seed
            )
            .build()
            .scores(PAPER)
            for seed in range(20)
        ]
        mean_estimate = np.mean(np.stack(runs), axis=0)
        # 20 runs × R=10 on n=300: generous 6-sigma-ish band on L1.
        assert np.abs(mean_estimate - exact).sum() < 0.03

    def test_dangling_mass_is_absorbed(self, tiny_graph):
        """tiny_graph has a dangling node; paper normalization must track
        the (sub-stochastic) Equation-1 fixed point, which sums below 1."""
        exact = exact_pagerank(tiny_graph, reset_probability=0.2)
        assert exact.sum() < 0.999  # mass genuinely lost at node 3
        runs = [
            MonteCarloPageRank(
                tiny_graph, reset_probability=0.2, walks_per_node=50, rng=seed
            )
            .build()
            .scores(PAPER)
            for seed in range(30)
        ]
        mean_estimate = np.mean(np.stack(runs), axis=0)
        assert np.abs(mean_estimate - exact).max() < 0.01

    def test_empirical_normalization_sums_to_one(self, pa_graph):
        scores = (
            MonteCarloPageRank(pa_graph, walks_per_node=5, rng=1)
            .build()
            .scores(EMPIRICAL)
        )
        assert scores.sum() == pytest.approx(1.0)

    def test_score_of_matches_vector(self, pa_graph):
        estimator = MonteCarloPageRank(pa_graph, walks_per_node=5, rng=2).build()
        scores = estimator.scores()
        for node in (0, 10, 299):
            assert estimator.score_of(node) == pytest.approx(scores[node])

    def test_top_k_sorted_and_consistent(self, pa_graph):
        estimator = MonteCarloPageRank(pa_graph, walks_per_node=5, rng=3).build()
        top = estimator.top(10)
        assert len(top) == 10
        values = [score for _, score in top]
        assert values == sorted(values, reverse=True)
        full = estimator.scores()
        assert top[0][1] == pytest.approx(full.max())

    def test_top_k_larger_than_n(self):
        graph = directed_cycle(5)
        estimator = MonteCarloPageRank(graph, walks_per_node=2, rng=0).build()
        assert len(estimator.top(50)) == 5

    def test_top_breaks_ties_by_node_id(self):
        """Regression: ``argpartition`` order used to leak into tied
        scores, making tied rankings flap; the shared ``top_k_dense``
        helper pins ties to ascending node id."""
        from repro.graph.digraph import DynamicDiGraph

        graph = DynamicDiGraph(num_nodes=8)  # edgeless: every walk is [v]
        estimator = MonteCarloPageRank(graph, walks_per_node=3, rng=1).build()
        top = estimator.top(5)
        scores = {score for _, score in top}
        assert len(scores) == 1, "premise: genuinely tied"
        assert [node for node, _ in top] == [0, 1, 2, 3, 4]
        assert estimator.top(5) == estimator.top(5)
        full = estimator.top(8)
        assert [node for node, _ in full] == list(range(8))

    def test_more_walks_reduce_error(self, pa_graph):
        """Theorem 1: concentration tightens with R."""
        exact = exact_pagerank(pa_graph, reset_probability=0.2)

        def error(walks: int, seed: int) -> float:
            estimator = MonteCarloPageRank(
                pa_graph, reset_probability=0.2, walks_per_node=walks, rng=seed
            ).build()
            return float(np.abs(estimator.scores() - exact).sum())

        coarse = np.mean([error(1, seed) for seed in range(5)])
        fine = np.mean([error(40, seed) for seed in range(5)])
        assert fine < coarse / 2  # ~sqrt(40) expected; demand at least 2x

    def test_uniform_on_cycle(self):
        """On a directed cycle PageRank is exactly uniform; R=1 already
        gives a usable estimate (the paper's 'even R=1 works' claim)."""
        graph = directed_cycle(40)
        estimator = MonteCarloPageRank(
            graph, reset_probability=0.2, walks_per_node=1, rng=5
        ).build()
        scores = estimator.scores(EMPIRICAL)
        assert abs(scores.mean() - 1 / 40) < 1e-12
        assert scores.max() < 4.0 / 40  # no wild outliers


class TestConfiguration:
    def test_invalid_eps(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            MonteCarloPageRank(tiny_graph, reset_probability=0.0)

    def test_invalid_walk_count(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            build_walk_store(tiny_graph, 0, 0.2)

    def test_unknown_normalization(self, tiny_graph):
        estimator = MonteCarloPageRank(tiny_graph, walks_per_node=2, rng=0).build()
        with pytest.raises(ConfigurationError):
            estimator.scores("bogus")
        with pytest.raises(ConfigurationError):
            estimator.score_of(0, "bogus")

    def test_lazy_build(self, tiny_graph):
        estimator = MonteCarloPageRank(tiny_graph, walks_per_node=2, rng=0)
        assert estimator.store is not None  # triggers build
        assert estimator.total_work_estimate() > 0

    def test_empty_graph(self):
        from repro.graph.digraph import DynamicDiGraph

        store = build_walk_store(DynamicDiGraph(), 3, 0.2, rng=0)
        assert store.num_segments == 0
        assert scores_from_store(store, 0, 3, 0.2).size == 0


class TestStoreShape:
    def test_r_segments_per_node(self, random_graph):
        store = build_walk_store(random_graph, 7, 0.2, rng=1)
        for node in range(random_graph.num_nodes):
            assert len(store.segments_of[node]) == 7
            for sid in store.segments_of[node]:
                assert store.get(sid).source == node
        store.check_invariants()

    def test_segments_respect_edges(self, random_graph):
        store = build_walk_store(random_graph, 3, 0.25, rng=2)
        for _, segment in store.iter_segments():
            for a, b in zip(segment.nodes, segment.nodes[1:]):
                assert random_graph.has_edge(a, b)
