"""Storage layer: stats, social store, sharded backend, pagerank store."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.monte_carlo import build_walk_store
from repro.core.walks import END_RESET, WalkSegment
from repro.errors import ConfigurationError, StaleSnapshotError, StoreClosedError
from repro.graph.digraph import DynamicDiGraph
from repro.store.backend import GraphBackend, InMemoryGraphBackend
from repro.store.pagerank_store import FETCH_SAMPLED_EDGE, PageRankStore
from repro.store.sharded import ShardedGraphBackend
from repro.store.social_store import SocialStore
from repro.store.stats import CallStats, LatencyModel


class TestCallStats:
    def test_record_and_count(self):
        stats = CallStats()
        stats.record("fetch")
        stats.record("fetch", 3)
        assert stats.count("fetch") == 4
        assert stats.count("other") == 0
        assert stats.total() == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CallStats().record("x", -1)

    def test_snapshot_delta(self):
        stats = CallStats()
        stats.record("a", 2)
        snap = stats.snapshot()
        stats.record("a")
        stats.record("b", 5)
        delta = stats.delta_since(snap)
        assert delta == {"a": 1, "b": 5}

    def test_merge_and_reset(self):
        a, b = CallStats(), CallStats()
        a.record("x", 1)
        b.record("x", 2)
        b.record("y", 3)
        a.merge(b)
        assert a.count("x") == 3
        assert a.count("y") == 3
        a.reset()
        assert a.total() == 0

    def test_iteration_sorted(self):
        stats = CallStats()
        stats.record("zeta")
        stats.record("alpha")
        assert [op for op, _ in stats] == ["alpha", "zeta"]

    def test_latency_model(self):
        stats = CallStats()
        stats.record("fetch", 10)
        stats.record("read", 100)
        model = LatencyModel(per_operation={"fetch": 0.002}, default_latency=0.0001)
        assert model.simulated_seconds(stats) == pytest.approx(0.02 + 0.01)
        assert model.simulated_seconds_for("fetch", 5) == pytest.approx(0.01)

    def test_reset_bumps_epoch_and_stale_snapshot_raises(self):
        """ISSUE-7: a delta spanning a reset fails loudly, not negatively."""
        stats = CallStats()
        stats.record("fetch", 3)
        snap = stats.snapshot()
        assert snap.epoch == 0
        stats.reset()
        assert stats.epoch == 1
        with pytest.raises(StaleSnapshotError) as excinfo:
            stats.delta_since(snap)
        assert excinfo.value.snapshot_epoch == 0
        assert excinfo.value.current_epoch == 1
        # a fresh snapshot works again
        stats.record("fetch", 2)
        assert stats.delta_since(stats.snapshot()) == {}

    def test_plain_dict_snapshot_skips_epoch_check(self):
        stats = CallStats()
        stats.record("fetch", 2)
        before = dict(stats.snapshot())  # legacy shape: no epoch attribute
        stats.reset()
        assert stats.delta_since(before) == {"fetch": -2}

    def test_concurrent_records_and_resets_never_corrupt(self):
        """Epoch stamping under a racing reset: deltas either succeed with
        non-negative counts or raise StaleSnapshotError — never silently
        return garbage."""
        stats = CallStats()
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            while not stop.is_set():
                stats.record("fetch")

        def resetter():
            for _ in range(200):
                stats.reset()

        def differ():
            for _ in range(500):
                snap = stats.snapshot()
                stats.record("fetch")
                try:
                    delta = stats.delta_since(snap)
                except StaleSnapshotError:
                    continue  # the legal racing outcome
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                else:
                    if any(count < 0 for count in delta.values()):
                        errors.append(
                            AssertionError(f"negative delta: {delta}")
                        )

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=resetter),
            threading.Thread(target=differ),
            threading.Thread(target=differ),
        ]
        for thread in threads[1:]:
            thread.start()
        threads[0].start()
        for thread in threads[1:]:
            thread.join()
        stop.set()
        threads[0].join()
        assert not errors, errors[0]

    def test_registry_mirror_is_lifetime_monotone(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        stats = CallStats(registry=registry, store="social")
        stats.record("fetch", 3)
        stats.reset()  # local counters rewind, the mirror must not
        stats.record("fetch", 2)
        assert stats.count("fetch") == 2
        mirror = registry.counter(
            "repro_store_operations_total", labels=("store", "operation")
        )
        assert mirror.value(store="social", operation="fetch") == 5

    def test_merge_updates_mirror(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        stats = CallStats(registry=registry, store="pagerank")
        other = CallStats()
        other.record("fetch", 4)
        stats.merge(other)
        mirror = registry.counter(
            "repro_store_operations_total", labels=("store", "operation")
        )
        assert mirror.value(store="pagerank", operation="fetch") == 4


class TestSocialStore:
    def test_counts_operations(self, tiny_graph):
        store = SocialStore.of_graph(tiny_graph)
        store.out_neighbors(0)
        store.out_degree(0)
        store.in_neighbors(2)
        store.random_out_neighbor(0, np.random.default_rng(0))
        assert store.stats.count("out_neighbors") == 1
        assert store.stats.count("out_degree") == 1
        assert store.stats.count("in_neighbors") == 1
        assert store.stats.count("random_out_neighbor") == 1

    def test_mutations_pass_through(self):
        store = SocialStore(graph=DynamicDiGraph(3))
        store.add_edge(0, 1)
        assert store.has_edge(0, 1)
        store.remove_edge(0, 1)
        assert not store.has_edge(0, 1)
        assert store.stats.count("add_edge") == 1
        assert store.stats.count("remove_edge") == 1

    def test_close_rejects_operations(self, tiny_graph):
        store = SocialStore.of_graph(tiny_graph)
        store.close()
        assert store.closed
        with pytest.raises(StoreClosedError):
            store.out_neighbors(0)
        with pytest.raises(StoreClosedError):
            store.add_edge(2, 3)

    def test_apply_events_counts_batch_traffic(self):
        from repro.graph.arrival import ArrivalEvent

        store = SocialStore(graph=DynamicDiGraph(3))
        delta = store.apply_events(
            [
                ArrivalEvent("add", 0, 1),
                ArrivalEvent("add", 1, 2),
                ArrivalEvent("remove", 0, 1),
                ArrivalEvent("add", 0, 4),  # grows the node universe
            ]
        )
        assert delta == {"apply_batch": 1, "add_edge": 3, "remove_edge": 1}
        assert store.num_nodes == 5
        assert store.has_edge(1, 2)
        assert not store.has_edge(0, 1)

    def test_apply_events_rejected_when_closed(self, tiny_graph):
        from repro.graph.arrival import ArrivalEvent

        store = SocialStore.of_graph(tiny_graph)
        store.close()
        with pytest.raises(StoreClosedError):
            store.apply_events([ArrivalEvent("add", 0, 3)])

    def test_backend_xor_graph(self, tiny_graph):
        with pytest.raises(ValueError):
            SocialStore(InMemoryGraphBackend(), graph=tiny_graph)

    def test_backend_protocol(self):
        assert isinstance(InMemoryGraphBackend(), GraphBackend)
        assert isinstance(ShardedGraphBackend(), GraphBackend)


class TestShardedBackend:
    def test_routing_is_stable_and_covering(self):
        backend = ShardedGraphBackend(DynamicDiGraph(100), num_shards=8)
        shards = {backend.shard_of(node) for node in range(100)}
        assert shards == set(range(8))
        assert backend.shard_of(42) == backend.shard_of(42)

    def test_out_in_billed_to_owning_shards(self):
        graph = DynamicDiGraph(10)
        backend = ShardedGraphBackend(graph, num_shards=4)
        backend.add_edge(1, 2)
        source_shard = backend.shard_of(1)
        target_shard = backend.shard_of(2)
        assert backend.shard_stats[source_shard].count("add_edge_out") == 1
        assert backend.shard_stats[target_shard].count("add_edge_in") == 1
        backend.out_neighbors(1)
        assert backend.shard_stats[source_shard].count("out_neighbors") == 1

    def test_load_and_imbalance(self):
        graph = DynamicDiGraph(20)
        backend = ShardedGraphBackend(graph, num_shards=4)
        assert backend.load_imbalance() == 0.0
        for node in range(19):
            backend.add_edge(node, node + 1)
        loads = backend.shard_load()
        assert sum(loads) == 2 * 19
        assert backend.load_imbalance() >= 1.0

    def test_invalid_shards(self):
        with pytest.raises(ConfigurationError):
            ShardedGraphBackend(num_shards=0)

    def test_works_under_social_store(self, random_graph):
        store = SocialStore(ShardedGraphBackend(random_graph, num_shards=4))
        assert store.out_degree(0) == random_graph.out_degree(0)
        assert store.num_edges == random_graph.num_edges

    def test_every_out_op_bills_the_source_shard(self):
        """Out-edge ops bill the node whose forward adjacency row they
        touch; in-edge ops bill the backward row's owner (FlockDB's
        doubly-indexed layout)."""
        graph = DynamicDiGraph(10)
        backend = ShardedGraphBackend(graph, num_shards=4)
        backend.add_edge(1, 2)
        backend.add_edge(3, 2)
        source_shard = backend.shard_of(1)
        target_shard = backend.shard_of(2)

        backend.out_degree(1)
        backend.out_neighbors(1)
        backend.random_out_neighbor(1, rng=0)
        backend.has_edge(1, 2)
        for operation in (
            "out_degree",
            "out_neighbors",
            "random_out_neighbor",
            "has_edge",
        ):
            assert backend.shard_stats[source_shard].count(operation) == 1, operation
            # and nothing leaked onto the target's shard
            assert backend.shard_stats[target_shard].count(operation) == 0, operation

    def test_every_in_op_bills_the_target_shard(self):
        graph = DynamicDiGraph(10)
        backend = ShardedGraphBackend(graph, num_shards=4)
        backend.add_edge(1, 2)
        source_shard = backend.shard_of(1)
        target_shard = backend.shard_of(2)

        backend.in_degree(2)
        backend.in_neighbors(2)
        backend.random_in_neighbor(2, rng=0)
        for operation in ("in_degree", "in_neighbors", "random_in_neighbor"):
            assert backend.shard_stats[target_shard].count(operation) == 1, operation
            assert backend.shard_stats[source_shard].count(operation) == 0, operation

    def test_remove_edge_bills_both_rows(self):
        graph = DynamicDiGraph(10)
        backend = ShardedGraphBackend(graph, num_shards=4)
        backend.add_edge(4, 7)
        backend.remove_edge(4, 7)
        assert backend.shard_stats[backend.shard_of(4)].count("remove_edge_out") == 1
        assert backend.shard_stats[backend.shard_of(7)].count("remove_edge_in") == 1
        # exactly one op per row per mutation — totals account for all four
        assert sum(backend.shard_load()) == 4

    def test_fibonacci_hash_spreads_consecutive_ids(self):
        """shard_of uses Fibonacci hashing: dense id ranges (the common
        node-id layout) must spread near-uniformly and consecutive ids
        must not pile onto the same shard."""
        backend = ShardedGraphBackend(DynamicDiGraph(), num_shards=8)
        num_nodes = 10_000
        counts = [0] * 8
        consecutive_collisions = 0
        previous = None
        for node in range(num_nodes):
            shard = backend.shard_of(node)
            assert 0 <= shard < 8
            counts[shard] += 1
            if previous is not None and shard == previous:
                consecutive_collisions += 1
            previous = shard
        expected = num_nodes / 8
        for count in counts:
            assert abs(count - expected) < 0.05 * num_nodes
        # a modulo hash would give 0 or num_nodes-1 collisions depending on
        # alignment; Fibonacci scrambling keeps neighbours apart
        assert consecutive_collisions < 0.30 * num_nodes

    def test_shard_of_is_deterministic_across_instances(self):
        first = ShardedGraphBackend(DynamicDiGraph(), num_shards=8)
        second = ShardedGraphBackend(DynamicDiGraph(), num_shards=8)
        assert [first.shard_of(n) for n in range(256)] == [
            second.shard_of(n) for n in range(256)
        ]


class TestPageRankStore:
    @pytest.fixture
    def loaded(self, random_graph):
        social = SocialStore.of_graph(random_graph)
        store = PageRankStore(social)
        store.walks = build_walk_store(random_graph, 4, 0.2, rng=0)
        return store

    def test_counters(self, loaded, random_graph):
        node = 5
        assert loaded.walk_count(node) == loaded.walks.distinct_segment_count(node)
        assert loaded.visit_count(node) == loaded.walks.visit_count(node)
        assert loaded.out_degree(node) == random_graph.out_degree(node)

    def test_activation_probability(self, loaded):
        node = 3
        degree = loaded.out_degree(node)
        walk_count = loaded.walk_count(node)
        expected = 1.0 - (1.0 - 1.0 / degree) ** walk_count
        assert loaded.activation_probability(node) == pytest.approx(expected)

    def test_activation_probability_edges(self, tiny_graph):
        social = SocialStore.of_graph(tiny_graph)
        store = PageRankStore(social)
        # no walks stored yet -> never activates
        assert store.activation_probability(0) == 0.0
        # dangling node (3) -> must always resume pending steps
        store.add_segment(WalkSegment([0, 3], END_RESET))
        assert store.activation_probability(3) == 1.0

    def test_fetch_returns_copies(self, loaded):
        node = 7
        result = loaded.fetch(node)
        assert result.out_degree == len(result.neighbors)
        assert len(result.segments) == 4
        # mutating the returned segments must not corrupt the store
        result.segments[0].append(999999)
        loaded.walks.check_invariants()

    def test_fetch_counting(self, loaded):
        assert loaded.fetch_count == 0
        loaded.fetch(1)
        loaded.fetch(2)
        assert loaded.fetch_count == 2
        loaded.reset_fetch_count()
        assert loaded.fetch_count == 0

    def test_fetch_sampled_edge_mode(self, random_graph):
        social = SocialStore.of_graph(random_graph)
        store = PageRankStore(social, fetch_mode=FETCH_SAMPLED_EDGE)
        store.walks = build_walk_store(random_graph, 2, 0.2, rng=1)
        result = store.fetch(0, rng=np.random.default_rng(2))
        assert result.out_degree == random_graph.out_degree(0)
        assert len(result.neighbors) == 1
        assert result.neighbors[0] in random_graph.out_neighbors(0)

    def test_fetch_includes_in_neighbors_when_asked(self, random_graph):
        social = SocialStore.of_graph(random_graph)
        store = PageRankStore(social, include_in_neighbors=True)
        result = store.fetch(4)
        assert sorted(result.in_neighbors) == sorted(random_graph.in_neighbors(4))

    def test_fetch_unknown_node_is_empty(self, loaded):
        result = loaded.fetch(10_000) if loaded.walks.num_nodes > 10_000 else None
        # out-of-range nodes in the walk store yield no segments
        assert loaded.segments_starting_at(10_000) == []

    def test_invalid_fetch_mode(self, tiny_graph):
        with pytest.raises(ConfigurationError):
            PageRankStore(SocialStore.of_graph(tiny_graph), fetch_mode="nope")
