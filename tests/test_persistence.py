"""Snapshot/restore: round trips, validation, corruption detection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.core.monte_carlo import build_walk_store
from repro.core.salsa import IncrementalSALSA
from repro.errors import ConfigurationError, WalkStateError
from repro.store.persistence import (
    load_engine,
    load_walk_store,
    save_engine,
    save_walk_store,
)


class TestWalkStoreRoundTrip:
    def test_round_trip_preserves_everything(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 4, 0.25, rng=1)
        path = tmp_path / "store.npz"
        save_walk_store(store, path)
        restored = load_walk_store(path)
        restored.check_invariants()
        assert restored.num_nodes == store.num_nodes
        assert restored.total_visits == store.total_visits
        assert restored.visit_count_array().tolist() == (
            store.visit_count_array().tolist()
        )
        for (_, a), (_, b) in zip(store.iter_segments(), restored.iter_segments()):
            assert a.nodes == b.nodes
            assert a.end_reason == b.end_reason

    def test_side_tracking_round_trip(self, random_graph, tmp_path):
        engine = IncrementalSALSA.from_graph(random_graph, walks_per_node=2, rng=2)
        path = tmp_path / "salsa.npz"
        save_walk_store(engine.walks, path)
        restored = load_walk_store(path)
        assert restored.track_sides
        restored.check_invariants()
        for side in (0, 1):
            assert restored.side_visit_count_array(side).tolist() == (
                engine.walks.side_visit_count_array(side).tolist()
            )

    def test_wrong_kind_rejected(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(random_graph, walks_per_node=2, rng=3)
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with pytest.raises(ConfigurationError):
            load_walk_store(path)


class TestEngineRoundTrip:
    def test_restored_engine_continues_correctly(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=3, rng=4
        )
        before = engine.pagerank()
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        restored = load_engine(path, rng=5)
        # identical state…
        assert np.allclose(restored.pagerank(), before)
        assert restored.walks_per_node == engine.walks_per_node
        assert restored.reset_probability == engine.reset_probability
        assert sorted(restored.graph.edges()) == sorted(engine.graph.edges())
        # …and it keeps working: mutations maintain invariants
        rng = np.random.default_rng(6)
        for _ in range(20):
            u, v = int(rng.integers(60)), int(rng.integers(60))
            if u != v and not restored.graph.has_edge(u, v):
                restored.add_edge(u, v)
        restored.walks.check_invariants()

    def test_snapshot_mismatch_detected(self, random_graph, tmp_path):
        """A snapshot whose segments disagree with its graph must not load."""
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=2, rng=7
        )
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        # corrupt: rewrite one walked-over edge out of the edge list
        data = dict(np.load(path, allow_pickle=False))
        segment_nodes = data["segment_nodes"]
        lengths = data["segment_lengths"]
        # find a segment of length >= 2 and delete its first edge from graph
        offset = 0
        victim = None
        for length in lengths:
            if length >= 2:
                victim = (int(segment_nodes[offset]), int(segment_nodes[offset + 1]))
                break
            offset += int(length)
        assert victim is not None
        sources = data["edge_sources"]
        targets = data["edge_targets"]
        keep = ~((sources == victim[0]) & (targets == victim[1]))
        data["edge_sources"] = sources[keep]
        data["edge_targets"] = targets[keep]
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_engine(path)

    def test_version_check(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(random_graph, walks_per_node=2, rng=8)
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(data["meta"]))
        meta["format_version"] = 99
        data["meta"] = json.dumps(meta)
        np.savez_compressed(path, **data)
        with pytest.raises(ConfigurationError):
            load_engine(path)

    def test_corrupt_arena_detected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=9)
        path = tmp_path / "store.npz"
        save_walk_store(store, path)
        data = dict(np.load(path, allow_pickle=False))
        data["segment_nodes"] = data["segment_nodes"][:-1]  # truncate arena
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_walk_store(path)
