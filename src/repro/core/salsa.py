"""Incremental and personalized SALSA (§2.3 and the §3 extension).

SALSA's random walk alternates *forward* steps (hub → authority via a
uniform out-edge) and *backward* steps (authority → hub via a uniform
in-edge).  The personalized variant resets to the seed at forward steps
only.  Per the paper, each node stores ``2R`` segments: ``R`` starting with
a forward step (the node acting as a hub) and ``R`` starting with a
backward step (the node acting as an authority); mean segment length is
``2/ε`` visits because only every other visit flips the ε-coin.

Maintenance differs from PageRank in one structural way (Theorem 6): an
arriving edge ``(u, v)`` can invalidate *forward* steps taken at ``u``
(probability ``1/outdeg(u)`` each) *and* *backward* steps taken at ``v``
(probability ``1/indeg(v)`` each), so both endpoints' visit lists are
scanned.  Together with the doubled segment count and doubled length this
is the paper's factor-16 over Theorem 4.

Scores: a segment position's *side* is ``(position + parity_offset) % 2``
(0 = hub visit, 1 = authority visit); authority scores are authority-side
visit frequencies, hub scores hub-side frequencies.  As ε → 0 the global
authority distribution converges to ``indegree/m`` (§2.2's remark) — a
property the tests pin down.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.columnar import BACKEND_COLUMNAR, make_walk_store
from repro.core.incremental import UpdateReport
from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    SIDE_AUTHORITY,
    SIDE_HUB,
    WalkIndex,
    WalkSegment,
    default_max_steps,
)
from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent
from repro.graph.csr import CSRGraph, assemble_segments
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng
from repro.store.pagerank_store import PageRankStore
from repro.store.social_store import SocialStore

__all__ = [
    "IncrementalSALSA",
    "PersonalizedSALSA",
    "SalsaWalkResult",
    "simulate_salsa_walk",
    "batch_salsa_walks",
]


def simulate_salsa_walk(
    graph: DynamicDiGraph,
    start: int,
    start_side: int,
    reset_probability: float,
    rng: RngLike = None,
    *,
    max_steps: Optional[int] = None,
) -> WalkSegment:
    """Scalar alternating walk starting at ``start`` on ``start_side``.

    Hub visits flip the ε-coin before stepping forward; authority visits
    step backward unconditionally.  Dangling (no edge in the required
    direction) ends the segment with :data:`END_DANGLING`.
    """
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = 2 * default_max_steps(reset_probability)
    nodes = [start]
    side = start_side
    current = start
    for _ in range(max_steps):
        if side == SIDE_HUB:
            if generator.random() < reset_probability:
                return WalkSegment(nodes, END_RESET, parity_offset=start_side)
            adjacency = graph.out_view(current)
            if not adjacency:
                return WalkSegment(nodes, END_DANGLING, parity_offset=start_side)
        else:
            adjacency = graph.in_view(current)
            if not adjacency:
                return WalkSegment(nodes, END_DANGLING, parity_offset=start_side)
        current = adjacency[int(generator.integers(len(adjacency)))]
        nodes.append(current)
        side = 1 - side
    return WalkSegment(nodes, END_RESET, parity_offset=start_side)  # cap


def batch_salsa_walks(
    out_csr: CSRGraph,
    in_csr: CSRGraph,
    starts: np.ndarray,
    start_side: int,
    reset_probability: float,
    rng: RngLike = None,
    *,
    max_steps: Optional[int] = None,
) -> tuple[list[list[int]], np.ndarray]:
    """Vectorized alternating walks (all starting on the same side).

    Returns ``(segments, end_reasons)``; round parity decides whether the
    round flips ε-coins (hub rounds) or steps unconditionally backward.
    """
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = 2 * default_max_steps(reset_probability)
    starts_arr = np.asarray(starts, dtype=np.int64)
    num_walks = len(starts_arr)
    end_reasons = np.zeros(num_walks, dtype=np.int8)
    if num_walks == 0:
        return [], end_reasons

    active = np.arange(num_walks, dtype=np.int64)
    current = starts_arr.copy()
    round_ids: list[np.ndarray] = []
    round_nodes: list[np.ndarray] = []

    for round_index in range(max_steps):
        side = (start_side + round_index) % 2
        csr = out_csr if side == SIDE_HUB else in_csr
        positions = current[active]
        if side == SIDE_HUB:
            continues = generator.random(active.size) >= reset_probability
        else:
            continues = np.ones(active.size, dtype=bool)
        degrees = csr.indptr[positions + 1] - csr.indptr[positions]
        dangling = continues & (degrees == 0)
        stepping = continues & (degrees > 0)
        end_reasons[active[dangling]] = END_DANGLING

        if stepping.any():
            step_nodes = positions[stepping]
            step_degrees = degrees[stepping]
            offsets = (generator.random(step_nodes.size) * step_degrees).astype(
                np.int64
            )
            successors = csr.indices[csr.indptr[step_nodes] + offsets]
            stepping_ids = active[stepping]
            round_ids.append(stepping_ids)
            round_nodes.append(successors)
            current[stepping_ids] = successors
            active = stepping_ids
        else:
            active = active[:0]
            break

    if active.size:
        end_reasons[active] = END_RESET  # safety cap
    segments = assemble_segments(starts_arr, round_ids, round_nodes)
    return segments, end_reasons


class IncrementalSALSA:
    """Always-fresh SALSA hub/authority scores over a dynamic graph."""

    def __init__(
        self,
        social_store: Optional[SocialStore] = None,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        store_backend: str = BACKEND_COLUMNAR,
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        if walks_per_node <= 0:
            raise ConfigurationError(
                f"walks_per_node must be positive, got {walks_per_node}"
            )
        self.social_store = social_store if social_store is not None else SocialStore()
        self.reset_probability = reset_probability
        self.walks_per_node = walks_per_node
        self.store_backend = store_backend
        make_walk_store(0, backend=store_backend)  # validate the name early
        self._rng = ensure_rng(rng)
        self.pagerank_store = PageRankStore(
            self.social_store, track_sides=True, include_in_neighbors=True
        )
        self.total_segments_rerouted = 0
        self.total_steps_resimulated = 0
        self.total_steps_discarded = 0
        self.arrivals_processed = 0
        self.removals_processed = 0

    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: DynamicDiGraph,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        store_backend: str = BACKEND_COLUMNAR,
    ) -> "IncrementalSALSA":
        engine = cls(
            SocialStore.of_graph(graph),
            reset_probability=reset_probability,
            walks_per_node=walks_per_node,
            rng=rng,
            store_backend=store_backend,
        )
        engine.initialize()
        return engine

    def initialize(self) -> None:
        """Simulate ``R`` forward-start + ``R`` backward-start segments per node."""
        graph = self.graph
        store = make_walk_store(
            graph.num_nodes, track_sides=True, backend=self.store_backend
        )
        if graph.num_nodes:
            out_csr = graph.to_csr("out")
            in_csr = graph.to_csr("in")
            starts = np.repeat(
                np.arange(graph.num_nodes, dtype=np.int64), self.walks_per_node
            )
            all_segments: list[list[int]] = []
            all_reasons: list[int] = []
            parities: list[int] = []
            for side in (SIDE_HUB, SIDE_AUTHORITY):
                segments, reasons = batch_salsa_walks(
                    out_csr, in_csr, starts, side, self.reset_probability, self._rng
                )
                all_segments.extend(segments)
                all_reasons.extend(int(reason) for reason in reasons)
                parities.extend(side for _ in segments)
            store.bulk_add_segments(all_segments, all_reasons, parities)
        self.pagerank_store.walks = store

    @property
    def graph(self) -> DynamicDiGraph:
        return self.social_store.graph

    @property
    def walks(self) -> WalkIndex:
        return self.pagerank_store.walks

    def _ensure_walks(self, node: int) -> int:
        """Give ``node`` its 2R segments if missing; returns steps simulated."""
        self.walks.ensure_node(node)
        owned = self.walks.segments_starting_at(node)
        steps = 0
        for side in (SIDE_HUB, SIDE_AUTHORITY):
            existing = sum(
                1
                for sid in owned
                if self.walks.parity_of(sid) == side
            )
            for _ in range(existing, self.walks_per_node):
                segment = simulate_salsa_walk(
                    self.graph, node, side, self.reset_probability, self._rng
                )
                self.walks.add_segment(segment)
                steps += len(segment.nodes) - 1
        return steps

    def add_node(self) -> int:
        node = self.graph.add_node()
        self._ensure_walks(node)
        return node

    # ------------------------------------------------------------------
    # Edge arrival (Theorem 6's operation)
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int) -> UpdateReport:
        """Insert an edge; repair forward steps at ``source`` and backward
        steps at ``target``."""
        nodes_before = self.graph.num_nodes
        self.graph.ensure_node(max(source, target))
        affected = list(
            dict.fromkeys(
                self.walks.segment_ids_visiting(source)
                + self.walks.segment_ids_visiting(target)
            )
        )
        self.social_store.add_edge(source, target)
        report = UpdateReport(operation="add", edge=(source, target))
        for node in range(nodes_before, self.graph.num_nodes):
            report.steps_initialized += self._ensure_walks(node)
        out_degree = self.graph.out_degree(source)
        in_degree = self.graph.in_degree(target)
        forward_probability = 1.0 / out_degree
        backward_probability = 1.0 / in_degree
        rng = self._rng

        for segment_id in affected:
            nodes = self.walks.segment_nodes(segment_id)
            parity = self.walks.parity_of(segment_id)
            if self._maybe_redirect(
                segment_id,
                nodes,
                parity,
                source,
                target,
                forward_probability,
                backward_probability,
                report,
                rng,
            ):
                continue
            if self.walks.end_reason_of(
                segment_id
            ) == END_DANGLING and self._extend_dangling(
                segment_id, nodes, parity, source, target, report, rng
            ):
                continue
            report.segments_examined += 1

        self._finish_report(report)
        self.arrivals_processed += 1
        return report

    def _maybe_redirect(
        self,
        segment_id: int,
        nodes: list[int],
        parity: int,
        source: int,
        target: int,
        forward_probability: float,
        backward_probability: float,
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> bool:
        for position in range(len(nodes) - 1):
            side = (position + parity) % 2
            if side == SIDE_HUB and nodes[position] == source:
                if rng.random() < forward_probability:
                    self._splice(
                        segment_id, position, target, SIDE_AUTHORITY, report, rng
                    )
                    return True
            elif side == SIDE_AUTHORITY and nodes[position] == target:
                if rng.random() < backward_probability:
                    self._splice(segment_id, position, source, SIDE_HUB, report, rng)
                    return True
        return False

    def _extend_dangling(
        self,
        segment_id: int,
        nodes: list[int],
        parity: int,
        source: int,
        target: int,
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> bool:
        """Resume a stranded segment whose pending step just became possible."""
        last_position = len(nodes) - 1
        last_node = nodes[-1]
        side = (last_position + parity) % 2
        if side == SIDE_HUB and last_node == source:
            next_node = self.graph.random_out_neighbor(source, rng)
            self._splice(
                segment_id, last_position, next_node, SIDE_AUTHORITY, report, rng
            )
            return True
        if side == SIDE_AUTHORITY and last_node == target:
            next_node = self.graph.random_in_neighbor(target, rng)
            self._splice(segment_id, last_position, next_node, SIDE_HUB, report, rng)
            return True
        return False

    def _splice(
        self,
        segment_id: int,
        keep_until: int,
        next_node: int,
        next_side: int,
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> None:
        """Truncate after ``keep_until``, step to ``next_node``, resimulate."""
        discarded = self.walks.segment_length(segment_id) - (keep_until + 1)
        continuation = simulate_salsa_walk(
            self.graph, next_node, next_side, self.reset_probability, rng
        )
        self.walks.replace_suffix(
            segment_id, keep_until, continuation.nodes, continuation.end_reason
        )
        report.steps_discarded += discarded
        report.steps_resimulated += len(continuation.nodes)
        report.segments_rerouted += 1

    # ------------------------------------------------------------------
    # Edge removal
    # ------------------------------------------------------------------

    def remove_edge(self, source: int, target: int) -> UpdateReport:
        """Delete an edge; repair segments that used it in either direction."""
        self.social_store.remove_edge(source, target)
        report = UpdateReport(operation="remove", edge=(source, target))
        rng = self._rng
        affected = list(
            dict.fromkeys(
                self.walks.segment_ids_visiting(source)
                + self.walks.segment_ids_visiting(target)
            )
        )
        for segment_id in affected:
            nodes = self.walks.segment_nodes(segment_id)
            parity = self.walks.parity_of(segment_id)
            use = self._first_use(nodes, parity, source, target)
            if use is None:
                report.segments_examined += 1
                continue
            position, direction = use
            if direction == "forward":
                if self.graph.out_degree(source) == 0:
                    self._truncate_dangling(segment_id, position, report)
                else:
                    next_node = self.graph.random_out_neighbor(source, rng)
                    self._splice(
                        segment_id, position, next_node, SIDE_AUTHORITY, report, rng
                    )
            else:
                if self.graph.in_degree(target) == 0:
                    self._truncate_dangling(segment_id, position, report)
                else:
                    next_node = self.graph.random_in_neighbor(target, rng)
                    self._splice(
                        segment_id, position, next_node, SIDE_HUB, report, rng
                    )
        self._finish_report(report)
        self.removals_processed += 1
        return report

    def _truncate_dangling(
        self, segment_id: int, position: int, report: UpdateReport
    ) -> None:
        discarded = self.walks.segment_length(segment_id) - (position + 1)
        self.walks.replace_suffix(segment_id, position, [], END_DANGLING)
        report.steps_discarded += discarded
        report.segments_rerouted += 1

    @staticmethod
    def _first_use(
        nodes: list[int], parity: int, source: int, target: int
    ) -> Optional[tuple[int, str]]:
        for position in range(len(nodes) - 1):
            side = (position + parity) % 2
            if (
                side == SIDE_HUB
                and nodes[position] == source
                and nodes[position + 1] == target
            ):
                return position, "forward"
            if (
                side == SIDE_AUTHORITY
                and nodes[position] == target
                and nodes[position + 1] == source
            ):
                return position, "backward"
        return None

    def apply(self, event: ArrivalEvent) -> UpdateReport:
        if event.kind == "add":
            return self.add_edge(event.source, event.target)
        return self.remove_edge(event.source, event.target)

    def _finish_report(self, report: UpdateReport) -> None:
        report.store_called = report.segments_rerouted > 0
        self.total_segments_rerouted += report.segments_rerouted
        self.total_steps_resimulated += report.steps_resimulated
        self.total_steps_discarded += report.steps_discarded

    @property
    def total_work(self) -> int:
        return self.total_steps_resimulated + self.total_steps_discarded

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------

    def authority_scores(self) -> np.ndarray:
        """Authority-side visit frequencies (sum to 1; → indeg/m as ε→0)."""
        counts = self.walks.side_visit_count_array(SIDE_AUTHORITY).astype(np.float64)
        counts = self._pad(counts)
        total = counts.sum()
        return counts / total if total else counts

    def hub_scores(self) -> np.ndarray:
        """Hub-side visit frequencies (sum to 1)."""
        counts = self.walks.side_visit_count_array(SIDE_HUB).astype(np.float64)
        counts = self._pad(counts)
        total = counts.sum()
        return counts / total if total else counts

    def _pad(self, counts: np.ndarray) -> np.ndarray:
        if len(counts) < self.graph.num_nodes:
            counts = np.pad(counts, (0, self.graph.num_nodes - len(counts)))
        return counts

    def top_authorities(self, k: int) -> list[tuple[int, float]]:
        """Highest authority scores, ties by node id (shared ranking rule)."""
        from repro.core.topk import top_k_dense

        return top_k_dense(self.authority_scores(), k)

    def __repr__(self) -> str:
        return (
            f"IncrementalSALSA(nodes={self.graph.num_nodes}, "
            f"edges={self.graph.num_edges}, R={self.walks_per_node}, "
            f"eps={self.reset_probability})"
        )


@dataclass
class SalsaWalkResult:
    """Outcome of one personalized-SALSA stitched walk."""

    seed: int
    length: int
    hub_counts: Counter
    authority_counts: Counter
    fetches: int
    segments_used: int = 0
    plain_steps: int = 0
    resets: int = 0

    def top_authorities(
        self, k: int, *, exclude: tuple[int, ...] | set[int] = ()
    ) -> list[tuple[int, int]]:
        banned = set(exclude)
        ranked = sorted(
            (
                (node, count)
                for node, count in self.authority_counts.items()
                if node not in banned
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]


class _SalsaFetchState:
    """In-memory cache entry for a fetched node (both segment kinds)."""

    __slots__ = ("out_neighbors", "in_neighbors", "forward", "backward")

    def __init__(
        self,
        out_neighbors: list[int],
        in_neighbors: list[int],
        forward: list[list[int]],
        backward: list[list[int]],
    ) -> None:
        self.out_neighbors = out_neighbors
        self.in_neighbors = in_neighbors
        self.forward = forward
        self.backward = backward

    def take(self, side: int) -> Optional[list[int]]:
        pool = self.forward if side == SIDE_HUB else self.backward
        if pool:
            return pool.pop()
        return None


class PersonalizedSALSA:
    """Algorithm-1-style stitched walks for personalized SALSA queries.

    The walk alternates sides; ε-resets (to the seed's hub side) happen at
    hub visits only, matching the paper's personalized SALSA equations.
    Stored forward-start segments splice at hub visits, backward-start
    segments at authority visits; each splice ends in the segment's own
    reset, so the walk jumps back to the seed afterwards.
    """

    def __init__(
        self,
        pagerank_store: PageRankStore,
        *,
        reset_probability: float = 0.2,
        rng: RngLike = None,
    ) -> None:
        if not pagerank_store.walks.track_sides:
            raise ConfigurationError(
                "PersonalizedSALSA needs a side-tracking walk store "
                "(build it via IncrementalSALSA)"
            )
        self.store = pagerank_store
        self.reset_probability = reset_probability
        self._rng = ensure_rng(rng)

    def stitched_walk(
        self, seed: int, length: int, *, rng: RngLike = None
    ) -> SalsaWalkResult:
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length}")
        generator = ensure_rng(rng) if rng is not None else self._rng
        result = SalsaWalkResult(
            seed=seed,
            length=0,
            hub_counts=Counter(),
            authority_counts=Counter(),
            fetches=0,
        )
        fetched: dict[int, _SalsaFetchState] = {}
        current, side = seed, SIDE_HUB
        result.hub_counts[seed] += 1
        result.length = 1

        while result.length < length:
            if side == SIDE_HUB and generator.random() < self.reset_probability:
                current, side = seed, SIDE_HUB
                self._count(result, current, side)
                result.resets += 1
                continue

            state = fetched.get(current)
            if state is None:
                state = self._fetch(current, generator)
                fetched[current] = state
                result.fetches += 1
                continue

            segment = state.take(side)
            if segment is not None:
                self._splice(result, segment, side)
                result.segments_used += 1
                current, side = seed, SIDE_HUB
                self._count(result, current, side)
                result.resets += 1
                continue

            adjacency = (
                state.out_neighbors if side == SIDE_HUB else state.in_neighbors
            )
            if not adjacency:
                current, side = seed, SIDE_HUB
                self._count(result, current, side)
                result.resets += 1
                continue
            current = adjacency[int(generator.integers(len(adjacency)))]
            side = 1 - side
            self._count(result, current, side)
            result.plain_steps += 1

        return result

    def batch_stitched_walks(
        self,
        seeds,
        length,
        *,
        rngs=None,
        rng_seed: int = 0,
    ) -> list[SalsaWalkResult]:
        """Run one personalized-SALSA walk per seed through the batch kernel.

        Routes through :class:`repro.core.query_kernel.SalsaQueryKernel`
        (the multi-seed engine sharing the PPR kernel's stream/assembly
        machinery): per-walk generator streams, node payloads loaded once
        per batch, and vectorized hub/authority visit accumulation.
        Results are reproducible and independent of batch composition;
        see the kernel module docstring for the RNG stream contract.
        """
        from repro.core.query_kernel import SalsaQueryKernel

        # built per call (construction is a couple of attribute writes) so
        # a later change to self.reset_probability can never serve walks
        # drawn with a stale epsilon
        kernel = SalsaQueryKernel(
            self.store, reset_probability=self.reset_probability
        )
        return kernel.batch_stitched_walks(
            seeds, length, rngs=rngs, rng_seed=rng_seed
        )

    def _fetch(self, node: int, rng: np.random.Generator) -> _SalsaFetchState:
        fetch = self.store.fetch(node, rng)
        forward = [
            segment
            for segment, offset in zip(fetch.segments, fetch.parity_offsets)
            if offset == SIDE_HUB
        ]
        backward = [
            segment
            for segment, offset in zip(fetch.segments, fetch.parity_offsets)
            if offset == SIDE_AUTHORITY
        ]
        return _SalsaFetchState(
            out_neighbors=list(fetch.neighbors),
            in_neighbors=list(fetch.in_neighbors),
            forward=forward,
            backward=backward,
        )

    def _splice(self, result: SalsaWalkResult, segment: list[int], side: int) -> None:
        """Append segment[1:]; parity alternates from the splice point."""
        for offset, node in enumerate(segment[1:], start=1):
            self._count(result, node, (side + offset) % 2)

    @staticmethod
    def _count(result: SalsaWalkResult, node: int, side: int) -> None:
        if side == SIDE_HUB:
            result.hub_counts[node] += 1
        else:
            result.authority_counts[node] += 1
        result.length += 1
