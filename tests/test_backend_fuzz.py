"""Randomized cross-backend differential stress suite.

One seeded op-sequence generator drives every :class:`WalkIndex` backend —
object, columnar, and sharded with shard counts {1, 2, 4, 7} — through the
same interleaving of edge arrivals/removals, batched slices, PPR / top-k /
multi-seed kernel (``ppr_batch``) / bidirectional PPR-to-target
(``reverse_push``) / SALSA queries, persistence roundtrips, and
WAL-backed crash/recover cycles (``crash_recover`` — snapshot, log a
batch, "crash", replay the log, continue on the recovered engine),
asserting a **bit-identical observable trace at every step**
(DESIGN.md §6's determinism contract, §9's shard-count-invariance
guarantee, and §10's kernel stream contract under interleaved updates).

When a sequence diverges, :func:`shrink_ops` delta-debugs it down to a
(locally) minimal failing op list and the assertion message prints the
seed plus the surviving ops — paste them into :func:`replay` to reproduce.
Quick sequences run in tier-1; the long sweep is marked ``fuzz`` and runs
via ``pytest -m fuzz`` (the CI coverage job includes it).

The ``scheduler`` dimension replays the same grammar through a
:class:`~repro.core.scheduler.StalenessScheduler` (replay mode, infinite
budget) with extra ``defer_updates`` / ``flush`` / ``query_stale`` ops:
mutations defer, queries read the stale store, and every defer/flush step
digests the queue accounting plus the post-flush scores — so deferred
repair must be bit-identical across backends *and* (by the final digest)
to what eager application would have produced.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.query_kernel import QueryKernel
from repro.core.salsa import IncrementalSALSA, PersonalizedSALSA
from repro.core.scheduler import StalenessScheduler
from repro.core.sharded_walks import ShardedWalkIndex
from repro.core.topk import top_k_personalized
from repro.core.walks import WalkStore
from repro.faults import kill_each_worker_plan
from repro.graph.arrival import ArrivalEvent
from repro.obs import MetricsRegistry
from repro.serve import (
    MultiProcessFrontend,
    QueryEngine,
    QueryRequest,
    RequestBatcher,
    WorkerConfig,
    WriteAheadLog,
    recover_engine,
)
from repro.serve.traffic import zipf_seed_sequence
from repro.store.persistence import load_engine, save_engine
from repro.workloads.twitter_like import twitter_like_graph

BACKENDS = ["object", "columnar", "sharded:1", "sharded:2", "sharded:4", "sharded:7"]
SALSA_BACKENDS = ["object", "columnar", "sharded:2", "sharded:7"]

NUM_NODES = 90
NUM_EDGES = 700


# ----------------------------------------------------------------------
# Op-sequence generation
# ----------------------------------------------------------------------


def generate_ops(
    seed: int, num_ops: int, *, salsa: bool = False, scheduler: bool = False
) -> list[tuple]:
    """A deterministic op sequence for ``seed``.

    Ops carry concrete operands and are *self-validating on replay* (an
    add of a present edge replays as a no-op), so any subsequence is also
    a valid sequence — the property :func:`shrink_ops` relies on.

    ``scheduler=True`` swaps persistence roundtrips (a pending queue does
    not survive save/load) for the deferred-repair grammar:
    ``defer_updates`` (a queued event slice), ``flush`` (explicit drain),
    and ``query_stale`` (a PPR walk against the possibly-stale store,
    digested together with the queue depth it observed).
    """
    driver = np.random.default_rng(seed)
    ops: list[tuple] = []
    if salsa:
        kinds = ("add", "remove", "query")
    elif scheduler:
        kinds = ("add", "remove", "query_stale", "topk")
    else:
        kinds = ("add", "remove", "query", "topk")
    for index in range(num_ops):
        roll = driver.random()
        if not salsa and roll < 0.12:
            events = []
            for _ in range(int(driver.integers(3, 25))):
                u = int(driver.integers(NUM_NODES))
                v = int(driver.integers(NUM_NODES))
                events.append((u, v))
            ops.append(("defer_updates", events) if scheduler else ("batch", events))
            continue
        if not salsa and roll < 0.18:
            if scheduler:
                # a pending queue does not survive save/load, so the
                # scheduler grammar drains instead of persisting
                ops.append(("flush",))
            elif driver.random() < 0.35:
                pairs = [
                    (
                        int(driver.integers(NUM_NODES)),
                        int(driver.integers(NUM_NODES)),
                    )
                    for _ in range(int(driver.integers(2, 12)))
                ]
                ops.append(("crash_recover", pairs, index))
            else:
                ops.append(("roundtrip", index))
            continue
        if not salsa and roll < 0.26:
            batch_seeds = [
                int(driver.integers(NUM_NODES))
                for _ in range(int(driver.integers(2, 6)))
            ]
            ops.append(("ppr_batch", batch_seeds, index))
            continue
        if not salsa and roll < 0.32:
            # bidirectional PPR-to-target: mixes reverse-only exact pushes
            # (walk_length 0) with full bidirectional estimates
            qseeds = [
                int(driver.integers(NUM_NODES))
                for _ in range(int(driver.integers(1, 5)))
            ]
            walk_length = 0 if driver.random() < 0.4 else 300
            ops.append(
                (
                    "reverse_push",
                    int(driver.integers(NUM_NODES)),
                    qseeds,
                    walk_length,
                    index,
                )
            )
            continue
        kind = kinds[int(driver.integers(len(kinds)))]
        if kind in ("add", "remove"):
            ops.append(
                (
                    kind,
                    int(driver.integers(NUM_NODES)),
                    int(driver.integers(NUM_NODES)),
                )
            )
        elif kind in ("query", "query_stale"):
            ops.append((kind, int(driver.integers(NUM_NODES)), index))
        else:
            ops.append(("topk", int(driver.integers(NUM_NODES)), index))
    return ops


# ----------------------------------------------------------------------
# Replay — one backend, one observable trace
# ----------------------------------------------------------------------


def _save_version(engine) -> "int | None":
    """Snapshot version that keeps the engine's backend class stable."""
    if isinstance(engine.walks, WalkStore):
        return 1
    return None  # native default: v3 for sharded, v2 for columnar


def replay(
    ops: list[tuple],
    backend: str,
    seed: int,
    tmp_path,
    *,
    salsa: bool = False,
    scheduler: bool = False,
) -> list[tuple]:
    """Run ``ops`` on ``backend``; return the step-by-step observable trace."""
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=seed)
    if salsa:
        engine = IncrementalSALSA.from_graph(
            graph, walks_per_node=2, rng=seed + 1, store_backend=backend
        )
    else:
        engine = IncrementalPageRank.from_graph(
            graph, walks_per_node=3, rng=seed + 1, store_backend=backend
        )
    # Infinite budget: the queue drains only at explicit flush ops (and the
    # final one), so the flush points are part of the op sequence itself
    # and subsequences stay deterministic for the shrinker.
    sched = (
        StalenessScheduler(engine, staleness_budget=math.inf, repair="replay")
        if scheduler
        else None
    )
    trace: list[tuple] = []
    for op in ops:
        kind = op[0]
        if kind == "add":
            _, u, v = op
            if sched is not None:
                if u == v or sched.has_edge(u, v):
                    trace.append(("noop",))
                    continue
                sched.add_edge(u, v)
                trace.append(_defer_digest(sched))
                continue
            if u == v or engine.graph.has_edge(u, v):
                trace.append(("noop",))
                continue
            report = engine.add_edge(u, v)
            trace.append(_mutation_digest(engine, report, salsa))
        elif kind == "remove":
            _, u, v = op
            if sched is not None:
                if not sched.has_edge(u, v):
                    trace.append(("noop",))
                    continue
                sched.remove_edge(u, v)
                trace.append(_defer_digest(sched))
                continue
            if not engine.graph.has_edge(u, v):
                trace.append(("noop",))
                continue
            report = engine.remove_edge(u, v)
            trace.append(_mutation_digest(engine, report, salsa))
        elif kind in ("batch", "defer_updates"):
            _, pairs = op
            events = _toggle_events(pairs, engine, sched)
            if not events:
                trace.append(("noop",))
                continue
            if sched is not None:
                sched.apply_batch(events)
                trace.append(_defer_digest(sched))
                continue
            report = engine.apply_batch(events)
            trace.append(_mutation_digest(engine, report, salsa))
        elif kind == "flush":
            report = sched.flush()
            trace.append(
                (
                    "flush",
                    0 if report is None else report.num_events,
                    0 if report is None else report.segments_rerouted,
                    0 if report is None else report.steps_resimulated,
                    engine.walks.visit_count_array().tobytes(),
                    _scores_digest(engine, salsa),
                )
            )
        elif kind == "query_stale":
            # reads the store as-is (the flushed prefix) — stale state is
            # identical across backends, so the walk digest must be too
            _, qseed, index = op
            walk = PersonalizedPageRank(engine.pagerank_store).stitched_walk(
                qseed % engine.num_nodes,
                350,
                rng=np.random.default_rng([seed, index]),
            )
            trace.append(
                (
                    "query_stale",
                    sched.pending_events,
                    sched.pending_error,
                    tuple(sorted(walk.visit_counts.items())),
                    walk.fetches,
                    walk.segments_used,
                )
            )
        elif kind == "query":
            _, qseed, index = op
            rng = np.random.default_rng([seed, index])
            if salsa:
                walk = PersonalizedSALSA(engine.pagerank_store).stitched_walk(
                    qseed % engine.graph.num_nodes, 250, rng=rng
                )
                trace.append(
                    (
                        "squery",
                        tuple(sorted(walk.hub_counts.items())),
                        tuple(sorted(walk.authority_counts.items())),
                        walk.fetches,
                    )
                )
            else:
                walk = PersonalizedPageRank(engine.pagerank_store).stitched_walk(
                    qseed % engine.num_nodes, 350, rng=rng
                )
                trace.append(
                    (
                        "query",
                        tuple(sorted(walk.visit_counts.items())),
                        walk.fetches,
                        walk.segments_used,
                    )
                )
        elif kind == "ppr_batch":
            # the multi-seed kernel: one invocation, per-query streams;
            # its trace must be bit-identical across every backend
            _, batch_seeds, index = op
            kernel = QueryKernel(
                engine.pagerank_store,
                reset_probability=engine.reset_probability,
            )
            walks = kernel.batch_stitched_walks(
                [qseed % engine.num_nodes for qseed in batch_seeds],
                300,
                rngs=[
                    np.random.default_rng([seed, index, position])
                    for position in range(len(batch_seeds))
                ],
            )
            trace.append(
                (
                    "ppr_batch",
                    tuple(
                        (
                            tuple(sorted(walk.visit_counts.items())),
                            walk.length,
                            walk.fetches,
                            walk.segments_used,
                            walk.plain_steps,
                            walk.resets,
                        )
                        for walk in walks
                    ),
                )
            )
        elif kind == "reverse_push":
            # bidirectional estimator: the reverse push reads only the
            # graph (backend-independent) and the forward walks run on the
            # kernel's normative streams, so every float in the digest —
            # estimates, decisions, push/reset accounting — must be
            # bit-identical across backends, stale store included
            _, target, qseeds, walk_length, index = op
            kernel = QueryKernel(
                engine.pagerank_store,
                reset_probability=engine.reset_probability,
            )
            answers = kernel.batch_ppr_to_target(
                [qseed % engine.num_nodes for qseed in qseeds],
                target % engine.num_nodes,
                10 / engine.num_nodes,
                r_max=5 / engine.num_nodes,
                walk_length=walk_length,
                rngs=[
                    np.random.default_rng([seed, index, position])
                    for position in range(len(qseeds))
                ],
            )
            trace.append(
                (
                    "reverse_push",
                    tuple(
                        (
                            answer.estimate,
                            answer.above_delta,
                            answer.reverse_estimate,
                            answer.forward_contribution,
                            answer.pushes,
                            answer.resets,
                            answer.exact,
                        )
                        for answer in answers
                    ),
                )
            )
        elif kind == "topk":
            _, qseed, index = op
            top = top_k_personalized(
                PersonalizedPageRank(engine.pagerank_store),
                qseed % engine.num_nodes,
                5,
                rng=np.random.default_rng([seed, index]),
            )
            trace.append(("topk", tuple(top.ranking), top.walk_length))
        elif kind == "crash_recover":
            # durability differential (DESIGN.md §15): snapshot, WAL one
            # batch, "crash", and replay the log — the recovered engine
            # must match the live one bit-for-bit (scores *and* RNG
            # cursor) and then carries the rest of the trace itself, so
            # any post-recovery divergence surfaces in later digests
            _, pairs, index = op
            events = _toggle_events(pairs, engine, None)
            if not events:
                # replaying an empty log is a no-op by construction;
                # skip so the digest stays informative
                trace.append(("noop",))
                continue
            stem = f"crash-{backend.replace(':', '-')}-{index}"
            snapshot = tmp_path / f"{stem}.npz"
            save_engine(engine, snapshot, version=_save_version(engine))
            # checkpoint adoption: snapshots compact the walk layout, so
            # recovery is bit-identical *relative to the checkpoint
            # image* (repro.serve.wal's contract) — the live engine
            # therefore continues from the image it just wrote, exactly
            # like a process restarting from its own checkpoint
            engine = load_engine(
                snapshot, rng=np.random.default_rng([seed, index, 1])
            )
            wal_path = tmp_path / f"{stem}.wal"
            # reopening appends after the valid prefix — a leftover from
            # an earlier replay in this dir (the shrinker re-runs ops)
            # must not leak records into this cycle's recovery
            wal_path.unlink(missing_ok=True)
            wal = WriteAheadLog(wal_path)
            engine.attach_wal(wal)
            try:
                report = engine.apply_batch(events)
            finally:
                engine.detach_wal()
                wal.close()
            recovered, recovery = recover_engine(snapshot, wal_path)
            assert recovered.pagerank().tobytes() == engine.pagerank().tobytes()
            assert recovered.rng_state() == engine.rng_state()
            engine = recovered
            trace.append(
                (
                    "crash_recover",
                    recovery.records_replayed,
                    recovery.events_replayed,
                    report.segments_rerouted,
                    report.steps_resimulated,
                    engine.walks.visit_count_array().tobytes(),
                    _scores_digest(engine, salsa),
                )
            )
        elif kind == "roundtrip":
            _, index = op
            path = tmp_path / f"fuzz-{backend.replace(':', '-')}-{index}.npz"
            save_engine(engine, path, version=_save_version(engine))
            engine = load_engine(path, rng=np.random.default_rng([seed, index]))
            trace.append(
                (
                    "roundtrip",
                    engine.walks.num_segments,
                    engine.walks.total_visits,
                    engine.walks.visit_count_array().tobytes(),
                )
            )
        else:  # pragma: no cover - generator and replay agree on kinds
            raise AssertionError(f"unknown op {op!r}")
    if sched is not None:
        # Whatever is still queued must land identically on every backend.
        sched.flush()
        sched.close()
    engine.walks.check_invariants()
    trace.append(("final", _scores_digest(engine, salsa)))
    return trace


def _toggle_events(pairs, engine, sched) -> list[ArrivalEvent]:
    """Turn raw node pairs into a valid add/remove slice (self-validating).

    Presence is judged against the *logical* graph — the scheduler's
    pending queue included — overlaid with the slice's own earlier
    toggles, mirroring the eager path's edge-set walk.
    """
    view: dict[tuple[int, int], bool] = {}
    events: list[ArrivalEvent] = []
    for u, v in pairs:
        if u == v:
            continue
        key = (u, v)
        present = view.get(key)
        if present is None:
            present = (
                sched.has_edge(u, v)
                if sched is not None
                else engine.graph.has_edge(u, v)
            )
        events.append(ArrivalEvent("remove" if present else "add", u, v))
        view[key] = not present
    return events


def _defer_digest(sched) -> tuple:
    """Queue accounting after a deferral — error sums must match bit-for-bit
    across backends because they are derived from store state."""
    return (
        "defer",
        sched.pending_events,
        sched.pending_error,
        tuple(sorted(sched.pending_dirty_nodes)),
    )


def _mutation_digest(engine, report, salsa: bool) -> tuple:
    return (
        "mut",
        report.segments_rerouted,
        report.steps_resimulated,
        report.steps_discarded,
        getattr(report, "segments_examined", 0),
        tuple(sorted(getattr(report, "dirty_nodes", ()) or ())),
        _scores_digest(engine, salsa),
    )


def _scores_digest(engine, salsa: bool) -> bytes:
    if salsa:
        return (
            engine.authority_scores().tobytes() + engine.hub_scores().tobytes()
        )
    return engine.pagerank().tobytes()


# ----------------------------------------------------------------------
# Differential driver + shrinking repro helper
# ----------------------------------------------------------------------


def first_divergence(
    ops: list[tuple],
    seed: int,
    tmp_path,
    backends=BACKENDS,
    *,
    salsa: bool = False,
    scheduler: bool = False,
) -> "tuple | None":
    """Earliest (step, backend) whose trace leaves the reference, else None."""
    reference, *others = [
        replay(ops, backend, seed, tmp_path, salsa=salsa, scheduler=scheduler)
        for backend in backends
    ]
    for backend, trace in zip(backends[1:], others):
        for step, (expected, got) in enumerate(zip(reference, trace)):
            if expected != got:
                return step, backend
        if len(trace) != len(reference):  # pragma: no cover - defensive
            return min(len(trace), len(reference)), backend
    return None


def shrink_ops(
    ops: list[tuple],
    seed: int,
    tmp_path,
    backends=BACKENDS,
    *,
    salsa: bool = False,
    scheduler: bool = False,
    still_fails=None,
) -> list[tuple]:
    """Delta-debug ``ops`` to a 1-minimal subsequence that still diverges.

    ``still_fails(subsequence) -> bool`` defaults to "some backend's trace
    diverges"; tests for the shrinker itself inject a synthetic predicate.
    Subsequences stay valid because every op is self-validating on replay.
    """
    if still_fails is None:

        def still_fails(candidate: list[tuple]) -> bool:
            return (
                first_divergence(
                    candidate,
                    seed,
                    tmp_path,
                    backends,
                    salsa=salsa,
                    scheduler=scheduler,
                )
                is not None
            )

    current = list(ops)
    chunk = max(len(current) // 2, 1)
    while True:
        shrunk = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and still_fails(candidate):
                current = candidate
                shrunk = True
            else:
                start += chunk
        if chunk == 1:
            if not shrunk:
                break
        else:
            chunk = max(chunk // 2, 1)
    return current


def format_repro(seed: int, ops: list[tuple]) -> str:
    """Paste-able reproduction: the seed plus the (shrunk) op list."""
    lines = [f"seed = {seed}", "ops = ["]
    lines += [f"    {op!r}," for op in ops]
    lines += ["]", "# replay(ops, backend, seed, tmp_path) reproduces the trace"]
    return "\n".join(lines)


def assert_backends_agree(
    seed, num_ops, tmp_path, backends, *, salsa=False, scheduler=False
):
    ops = generate_ops(seed, num_ops, salsa=salsa, scheduler=scheduler)
    divergence = first_divergence(
        ops, seed, tmp_path, backends, salsa=salsa, scheduler=scheduler
    )
    if divergence is None:
        return
    step, backend = divergence
    minimal = shrink_ops(
        ops, seed, tmp_path, backends, salsa=salsa, scheduler=scheduler
    )
    pytest.fail(
        f"backend {backend!r} diverged from {backends[0]!r} at step {step} "
        f"(shrunk to {len(minimal)} ops):\n{format_repro(seed, minimal)}"
    )


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_fuzz_all_backends_quick(seed, tmp_path):
    assert_backends_agree(seed, 35, tmp_path, BACKENDS)


@pytest.mark.parametrize("seed", [10])
def test_fuzz_salsa_backends_quick(seed, tmp_path):
    assert_backends_agree(seed, 25, tmp_path, SALSA_BACKENDS, salsa=True)


@pytest.mark.parametrize("seed", [30, 31])
def test_fuzz_scheduler_all_backends_quick(seed, tmp_path):
    """Deferred repair + flush + stale queries agree across every backend."""
    assert_backends_agree(seed, 35, tmp_path, BACKENDS, scheduler=True)


@pytest.mark.parametrize("seed", [40])
def test_fuzz_scheduler_matches_eager_final_state(seed, tmp_path):
    """The scheduler trace's *final* digest equals the eager replay's.

    The same toggle decisions fall out of the logical edge view in both
    modes (deferral keeps presence semantics), so after the terminal flush
    the replay-mode engine must have walked the identical RNG stream —
    Algorithm 1 deferred is bit-for-bit Algorithm 1 eager.
    """
    ops = generate_ops(seed, 30, scheduler=True)
    eager_ops = [
        ("batch", op[1]) if op[0] == "defer_updates" else op
        for op in ops
        if op[0] not in ("flush", "query_stale")
    ]
    deferred = replay(ops, "columnar", seed, tmp_path, scheduler=True)
    eager = replay(eager_ops, "columnar", seed, tmp_path)
    assert deferred[-1] == eager[-1]


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(2, 8))
def test_fuzz_all_backends_long(seed, tmp_path):
    assert_backends_agree(seed, 120, tmp_path, BACKENDS)


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [20, 21])
def test_fuzz_salsa_backends_long(seed, tmp_path):
    assert_backends_agree(seed, 80, tmp_path, SALSA_BACKENDS, salsa=True)


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(32, 36))
def test_fuzz_scheduler_all_backends_long(seed, tmp_path):
    assert_backends_agree(seed, 110, tmp_path, BACKENDS, scheduler=True)


def _run_serve_workload(seed: int) -> tuple:
    """Drive a randomized Zipf serve workload with interleaved deferred
    mutations; return (registry, service, scheduler, offered-request count).

    Sized so every billing path fires: a small admission window forces
    sheds, Zipf duplicates force coalescing, repeated drains force cache
    hits, and scheduler mutations force both deferrals and repairs.
    """
    driver = np.random.default_rng(seed)
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=seed)
    registry = MetricsRegistry()
    engine = IncrementalPageRank.from_graph(
        graph, walks_per_node=3, rng=seed + 1, registry=registry
    )
    service = QueryEngine(
        engine,
        rng_seed=7,
        registry=registry,
        freshness="bounded",
        staleness_budget=0.05,
    )
    sched = service.scheduler
    offered = 0
    try:
        with RequestBatcher(
            service, max_workers=2, max_queue_depth=8
        ) as batcher:
            for _ in range(5):
                requests = [
                    QueryRequest(seed=s, k=5, length=250)
                    for s in zipf_seed_sequence(
                        20, NUM_NODES, rng=int(driver.integers(2**31))
                    )
                ]
                offered += len(requests)
                batcher.run(requests)
                if driver.random() < 0.5:
                    requests = requests[: int(driver.integers(1, 10))]
                    offered += len(requests)
                    batcher.run(requests)  # replay slice: cache hits
                events = _toggle_events(
                    [
                        (
                            int(driver.integers(NUM_NODES)),
                            int(driver.integers(NUM_NODES)),
                        )
                        for _ in range(int(driver.integers(1, 6)))
                    ],
                    engine,
                    sched,
                )
                if events:
                    sched.apply_batch(events)
    finally:
        service.detach()  # terminal flush drains whatever is still queued
    return registry, service, sched, offered


@pytest.mark.parametrize("seed", [50, 51])
def test_fuzz_metrics_consistency(seed):
    """Registry series, legacy stats views, and the scheduler's own ledger
    agree after a randomized serve workload (ISSUE-7's consistency check):
    every offered request is billed exactly once, and no repair or store
    operation escapes the unified exposition.
    """
    registry, service, sched, offered = _run_serve_workload(seed)
    stats = service.stats

    # serve accounting: answered splits into hit/miss; every offered
    # request is exactly one of answered / shed / coalesced
    assert stats.hits + stats.misses == stats.queries
    assert stats.queries + stats.shed + stats.coalesced == offered
    assert stats.hits > 0 and stats.misses > 0, "workload never exercised both outcomes"
    queries = registry.counter("repro_serve_queries_total", labels=("result",))
    assert queries.value(result="hit") == stats.hits
    assert queries.value(result="miss") == stats.misses
    assert queries.total() == stats.queries
    latency = registry.histogram("repro_serve_latency_seconds")
    assert latency.count() == stats.queries

    # scheduler: the stats counters mirror the scheduler's own ledger
    assert stats.deferred_events == sched.deferred_events
    assert stats.repairs == sched.flushes
    assert stats.repaired_events == sched.flushed_events
    assert sched.deferred_events > 0 and sched.flushes > 0
    assert sched.pending_events == 0  # detach drained the queue
    repaired = registry.counter("repro_scheduler_repaired_events_total")
    assert repaired.total() == sched.flushed_events
    repairs = registry.counter(
        "repro_scheduler_repairs_total", labels=("reason",)
    )
    assert repairs.total() == sched.flushes

    # store: the CallStats ledger and its registry mirror are one series
    store_stats = service.store.stats
    mirror = registry.counter(
        "repro_store_operations_total", labels=("store", "operation")
    )
    counts = dict(store_stats)
    assert counts, "workload never touched the store"
    for operation, count in counts.items():
        assert mirror.value(store="pagerank", operation=operation) == count


@pytest.mark.chaos
def test_fuzz_serve_kill_worker_differential():
    """Randomized serve traffic under the standard kill-every-worker
    schedule: interleaved waves, mutations, and epoch bumps, with every
    worker dying once mid-stream.  Every answer must equal the in-process
    oracle's bit-for-bit (retries re-execute, never approximate) and both
    workers must be respawned and live by the end.
    """
    seed = 60
    driver = np.random.default_rng(seed)
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=seed)
    engine = IncrementalPageRank.from_graph(
        graph, walks_per_node=3, rng=np.random.default_rng(seed + 1)
    )
    oracle = QueryEngine(engine, rng_seed=7)
    plan = kill_each_worker_plan(seed, 2, lo=1, hi=5)
    frontend = MultiProcessFrontend(
        engine,
        num_workers=2,
        config=WorkerConfig(rng_seed=7, fault_plan=plan),
        request_timeout=20.0,
        max_retries=4,
        sweep_interval=0.1,
    )
    try:
        for _ in range(6):
            wave = []
            for _ in range(int(driver.integers(6, 14))):
                qseed = int(driver.integers(NUM_NODES))
                if driver.random() < 0.5:
                    wave.append(
                        QueryRequest(kind="topk", seed=qseed, k=5, length=120)
                    )
                else:
                    wave.append(
                        QueryRequest(kind="ppr", seed=qseed, length=60)
                    )
            served = frontend.run(wave)
            _assert_serve_identical(served, _fuzz_oracle_answers(oracle, wave))
            events = _toggle_events(
                [
                    (
                        int(driver.integers(NUM_NODES)),
                        int(driver.integers(NUM_NODES)),
                    )
                    for _ in range(int(driver.integers(1, 6)))
                ],
                engine,
                None,
            )
            if events:
                engine.apply_batch(events)
                frontend.publish_epoch(timeout=60.0)
        deadline = time.monotonic() + 30.0
        while frontend.live_workers != [0, 1] and time.monotonic() < deadline:
            time.sleep(0.1)
        assert frontend.live_workers == [0, 1], (
            f"workers not repaired (seed={seed}, plan={plan!r}, "
            f"live={frontend.live_workers})"
        )
        # each worker died at least once (a respawn may itself race a
        # concurrent publish's prune and need a second attempt, so the
        # count is >= 1, not == 1)
        assert frontend.worker_restarts(0) >= 1
        assert frontend.worker_restarts(1) >= 1
    finally:
        frontend.close()
        oracle.detach()


def _fuzz_oracle_answers(oracle: QueryEngine, wave):
    return [
        oracle.ppr(request.seed, request.length)
        if request.kind == "ppr"
        else oracle.top_k(request.seed, request.k, length=request.length)
        for request in wave
    ]


def _assert_serve_identical(served, expected):
    assert len(served) == len(expected)
    for answer, reference in zip(served, expected):
        assert answer is not None
        if hasattr(reference, "ranking"):
            assert answer.ranking == reference.ranking
        else:
            assert answer.visit_counts == reference.visit_counts


def test_sharded_store_class_is_used(tmp_path):
    engine = IncrementalPageRank.from_graph(
        twitter_like_graph(40, 200, rng=0), walks_per_node=2, rng=1,
        store_backend="sharded:4",
    )
    assert isinstance(engine.walks, ShardedWalkIndex)
    assert engine.walks.num_shards == 4


def test_shrinker_minimizes_and_formats(tmp_path):
    """The repro helper finds a small culprit set and prints it."""
    ops = generate_ops(3, 30)
    culprits = {5, 17}

    def still_fails(candidate: list[tuple]) -> bool:
        chosen = {id(op) for op in candidate}
        return all(id(ops[i]) in chosen for i in culprits)

    minimal = shrink_ops(ops, 3, tmp_path, still_fails=still_fails)
    assert len(minimal) == len(culprits)
    assert all(any(op is ops[i] for i in culprits) for op in minimal)
    repro = format_repro(3, minimal)
    assert "seed = 3" in repro
    for op in minimal:
        assert repr(op) in repro
